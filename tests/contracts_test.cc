// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Compile-time enforcement of the Section 3 framework contracts
// (core/contracts.h) over every index family and substrate in the library.
//
// Nearly everything here is a static_assert: the test "runs" by compiling.
// Each assertion names the family and the contract it must keep, so removing
// a required member (a Save, a budget parameter, a stats out-param) from any
// family breaks this translation unit with a message pointing at the
// violated paper step rather than deep inside a caller. The negative block
// at the bottom proves the concepts actually discriminate — a type missing
// Save, or with a Load of the wrong shape, is rejected — which is what the
// try_compile harness in tests/negative_compile/ re-checks from a clean
// translation unit.

#include "core/contracts.h"

#include <cstdint>

#include <gtest/gtest.h>

#include "baseline/ir_tree.h"
#include "baseline/keywords_only.h"
#include "baseline/structured_only.h"
#include "core/appendix_g.h"
#include "core/dim_reduction.h"
#include "core/dynamic_orp_kw.h"
#include "core/lc_kw.h"
#include "core/nn_l2.h"
#include "core/nn_l2_approx.h"
#include "core/nn_linf.h"
#include "core/node_directory.h"
#include "core/orp_kw.h"
#include "core/query_engine.h"
#include "core/rr_kw.h"
#include "core/sp_kw_box.h"
#include "core/sp_kw_hs.h"
#include "core/srp_kw.h"
#include "geom/rank_space.h"
#include "kdtree/interval_tree.h"
#include "kdtree/kd_tree.h"
#include "ksi/framework_ksi.h"
#include "ksi/naive_ksi.h"
#include "parttree/ham_sandwich.h"
#include "text/corpus.h"

namespace kwsc {
namespace {

// ---------------------------------------------------------------------------
// ORP-KW (Theorem 1): the kd-path reference family. Full surface: build,
// budgeted box queries, threshold detection, persistence, audit arena.
// ---------------------------------------------------------------------------
template <int D>
using OrpBox = Box<D, double>;

static_assert(KwIndexFamily<OrpKwIndex<1>, OrpBox<1>>);
static_assert(KwIndexFamily<OrpKwIndex<2>, OrpBox<2>>);
static_assert(KwIndexFamily<OrpKwIndex<3>, OrpBox<3>>);
static_assert(ThresholdDetecting<OrpKwIndex<2>, OrpBox<2>>);
static_assert(StreamPersistable<OrpKwIndex<1>>);
static_assert(StreamPersistable<OrpKwIndex<2>>);
static_assert(StreamPersistable<OrpKwIndex<3>>);
static_assert(DirectlyAuditable<OrpKwIndex<2>>);
static_assert(AuditableFamily<OrpKwIndex<2>>);

// ---------------------------------------------------------------------------
// Dimension reduction (Theorem 2): same query surface in d >= 3; the
// doubly-exponential tree holds per-node sub-corpora, so it is deliberately
// not stream-persistable (rebuilds are cheap relative to its disk image).
// ---------------------------------------------------------------------------
static_assert(KwIndexFamily<DimRedOrpKwIndex<3>, OrpBox<3>>);
static_assert(KwIndexFamily<DimRedOrpKwIndex<4>, OrpBox<4>>);
static_assert(ThresholdDetecting<DimRedOrpKwIndex<3>, OrpBox<3>>);
static_assert(!StreamPersistable<DimRedOrpKwIndex<3>>);
static_assert(DirectlyAuditable<DimRedOrpKwIndex<3>>);

// ---------------------------------------------------------------------------
// RR-KW (Corollary 3): rectangles lift into a wrapped engine; the family is
// rect-buildable, box-queryable, and audits by delegation to that engine.
// ---------------------------------------------------------------------------
static_assert(RectBuildable<RrKwIndex<1>>);
static_assert(RectBuildable<RrKwIndex<2>>);
static_assert(BudgetedKwQueryable<RrKwIndex<1>, OrpBox<1>>);
static_assert(BudgetedKwQueryable<RrKwIndex<2>, OrpBox<2>>);
static_assert(ExposesArity<RrKwIndex<2>> && MemoryAccounted<RrKwIndex<2>>);
static_assert(DelegatingAuditable<RrKwIndex<2>>);
static_assert(AuditableFamily<RrKwIndex<2>>);
// Rectangles are not points: the point-build contract must not claim RR-KW.
static_assert(!PointBuildable<RrKwIndex<2>> ||
                  std::same_as<RrKwIndex<2>::RectType,
                               Box<2, double>>,  // RectType doubles as BoxType
              "RR-KW builds from rectangles");

// ---------------------------------------------------------------------------
// Batch-dynamic layer (core/dynamic_index.h): any family exposing the
// DynamizableFamily surface — span-construction, a static region/geometry
// match predicate, and an emit-functor query — plugs into DynamicIndex.
// Three structurally different families prove the concept generalizes:
// points-in-boxes, points-in-halfspace-conjunctions, rect-rect intersection.
// ---------------------------------------------------------------------------
static_assert(DynamizableFamily<OrpKwIndex<1>>);
static_assert(DynamizableFamily<OrpKwIndex<2>>);
static_assert(DynamizableFamily<OrpKwIndex<3>>);
static_assert(DynamizableFamily<SpKwBoxIndex<2>>);
static_assert(DynamizableFamily<RrKwIndex<1>>);
static_assert(DynamizableFamily<RrKwIndex<2>>);
// The dimension-reduction tree exposes no emit-functor query surface and is
// deliberately outside the dynamization contract (rebuild it instead).
static_assert(!DynamizableFamily<DimRedOrpKwIndex<3>>);

// ---------------------------------------------------------------------------
// L∞NN-KW (Corollary 5) and L2NN-KW (Corollary 7): t-nearest surface.
// Persistence exists exactly where the engine is the kd-path (D <= 2).
// ---------------------------------------------------------------------------
static_assert(PointBuildable<LinfNnIndex<2>>);
static_assert(NearestKwQueryable<LinfNnIndex<2>>);
static_assert(MemoryAccounted<LinfNnIndex<2>> && ExposesArity<LinfNnIndex<2>>);
static_assert(StreamPersistable<LinfNnIndex<2>>);
static_assert(NearestKwQueryable<LinfNnIndex<3>>);
static_assert(!StreamPersistable<LinfNnIndex<3>>);
static_assert(DelegatingAuditable<LinfNnIndex<2>>);

static_assert(PointBuildable<L2NnIndex<2>>);
static_assert(NearestKwQueryable<L2NnIndex<2>>);
static_assert(MemoryAccounted<L2NnIndex<2>> && ExposesArity<L2NnIndex<2>>);

static_assert(PointBuildable<ApproxL2NnIndex<2>>);
static_assert(NearestKwQueryable<ApproxL2NnIndex<2>>);
static_assert(MemoryAccounted<ApproxL2NnIndex<2>>);

// ---------------------------------------------------------------------------
// LC/SP-KW (Theorem 5, Corollary 6): the partition-tree path. Box substrate
// persists; the ham-sandwich substrate (2D) shares the exact query surface.
// LcKwIndex<D> must select the right substrate per dimension.
// ---------------------------------------------------------------------------
static_assert(KwIndexFamily<SpKwBoxIndex<2>, ConvexQuery<2>>);
static_assert(KwIndexFamily<SpKwBoxIndex<3>, ConvexQuery<3>>);
static_assert(ThresholdDetecting<SpKwBoxIndex<2>, ConvexQuery<2>>);
static_assert(StreamPersistable<SpKwBoxIndex<2>>);
static_assert(DirectlyAuditable<SpKwBoxIndex<2>>);

static_assert(KwIndexFamily<SpKwHsIndex, ConvexQuery<2>>);
static_assert(ThresholdDetecting<SpKwHsIndex, ConvexQuery<2>>);

static_assert(std::same_as<LcKwIndex<2>, SpKwHsIndex>);
static_assert(std::same_as<LcKwIndex<3>, SpKwBoxIndex<3>>);
static_assert(KwIndexFamily<LcKwIndex<3>, ConvexQuery<3>>);

// ---------------------------------------------------------------------------
// SRP-KW (Corollary 6): spherical surface over the lifted box substrate.
// ---------------------------------------------------------------------------
static_assert(PointBuildable<SrpKwIndex<2>>);
static_assert(BallKwQueryable<SrpKwIndex<2>>);
static_assert(MemoryAccounted<SrpKwIndex<2>> && ExposesArity<SrpKwIndex<2>>);
static_assert(DelegatingAuditable<SrpKwIndex<2>>);

// ---------------------------------------------------------------------------
// Dynamic ORP-KW (logarithmic method): built empty from options, queried
// without a budget (each level charges its own); memory-accounted.
// ---------------------------------------------------------------------------
static_assert(
    std::constructible_from<DynamicOrpKwIndex<2>, FrameworkOptions>);
static_assert(MemoryAccounted<DynamicOrpKwIndex<2>>);
static_assert(requires(const DynamicOrpKwIndex<2>& index, const OrpBox<2>& q,
                       std::span<const KeywordId> kws, QueryStats* stats) {
  { index.Query(q, kws, stats) } -> std::same_as<std::vector<ObjectId>>;
});

// ---------------------------------------------------------------------------
// Baselines (Section 5 comparisons): not framework families — no OpsBudget,
// BaselineStats instead of QueryStats — but the space-accounting contract
// still binds, and their query shapes are pinned so bench code stays stable.
// ---------------------------------------------------------------------------
static_assert(MemoryAccounted<IrTree<2>>);
static_assert(requires(const IrTree<2>& tree, const OrpBox<2>& q,
                       std::span<const KeywordId> kws, BaselineStats* stats) {
  { tree.Query(q, kws, stats) } -> std::same_as<std::vector<ObjectId>>;
});

static_assert(MemoryAccounted<KeywordsOnlyBaseline<2>>);
static_assert(MemoryAccounted<KeywordsOnlyRectBaseline<2>>);
static_assert(MemoryAccounted<StructuredOnlyBaseline<2>>);
static_assert(requires(const KeywordsOnlyBaseline<2>& b, const OrpBox<2>& q,
                       std::span<const KeywordId> kws, BaselineStats* stats) {
  { b.QueryBox(q, kws, stats) } -> std::same_as<std::vector<ObjectId>>;
});
static_assert(requires(const StructuredOnlyBaseline<2>& b, const OrpBox<2>& q,
                       std::span<const KeywordId> kws, BaselineStats* stats) {
  { b.QueryBox(q, kws, stats) } -> std::same_as<std::vector<ObjectId>>;
});

// ---------------------------------------------------------------------------
// KSI (Section 2 reduction): the framework instance and the naive control.
// ---------------------------------------------------------------------------
static_assert(MemoryAccounted<FrameworkKsi> && ExposesArity<FrameworkKsi>);
static_assert(requires(const FrameworkKsi& ksi,
                       std::span<const KeywordId> sets, QueryStats* stats) {
  { ksi.Report(sets, stats) } -> std::same_as<std::vector<int64_t>>;
  { ksi.Empty(sets, stats) } -> std::same_as<bool>;
});
static_assert(MemoryAccounted<NaiveKsi>);
static_assert(requires(const NaiveKsi& ksi, std::span<const KeywordId> sets) {
  { ksi.Report(sets) } -> std::same_as<std::vector<int64_t>>;
  { ksi.Empty(sets) } -> std::same_as<bool>;
});

// ---------------------------------------------------------------------------
// Substrates: kd-tree, interval tree, node directory, rank space, corpus.
// ---------------------------------------------------------------------------
static_assert(MemoryAccounted<KdTree<2>>);
static_assert(
    std::constructible_from<KdTree<2>, std::span<const Point<2, double>>,
                            int>);
static_assert(MemoryAccounted<IntervalTree<double>>);
static_assert(std::constructible_from<IntervalTree<double>,
                                      std::span<const Box<1, double>>>);

// Partition-tree substrate (src/parttree/): the weighted ham-sandwich cut
// the halfspace variant splits with (Theorem 5's two-line partition).
static_assert(std::is_aggregate_v<HamSandwichCut>);
static_assert(std::same_as<decltype(HamSandwichCut{}.line1), Halfspace<2>>);
static_assert(std::same_as<decltype(HamSandwichCut{}.line2), Halfspace<2>>);
static_assert(
    std::same_as<decltype(FindHamSandwichCut(
                     std::declval<std::span<const Point<2>>>(),
                     std::declval<std::span<const uint64_t>>())),
                 HamSandwichCut>);

static_assert(ArchiveSerializable<NodeDirectory>);
static_assert(MemoryAccounted<NodeDirectory>);
static_assert(ArchiveSerializable<RankSpace<1, double>>);
static_assert(ArchiveSerializable<RankSpace<2, double>>);
static_assert(MemoryAccounted<RankSpace<2, double>>);

static_assert(SelfPersistable<Corpus>);
static_assert(MemoryAccounted<Corpus>);
// Corpus::Load takes no corpus argument — the stream-persistable contract
// (which re-supplies one) must not claim it, and vice versa for indexes.
static_assert(!StreamPersistable<Corpus>);
static_assert(!SelfPersistable<OrpKwIndex<2>>);

// The batched engine accepts any box-queryable family.
static_assert(std::constructible_from<QueryEngine<OrpKwIndex<2>>,
                                      const OrpKwIndex<2>*, int>);
static_assert(std::constructible_from<QueryEngine<OrpKwIndex<2>>,
                                      const OrpKwIndex<2>*,
                                      const FrameworkOptions&>);

// ---------------------------------------------------------------------------
// Negative space: the concepts must reject malformed surfaces, not just
// accept the real ones. Each Bad* type below differs from a conforming type
// by exactly the defect named in its comment.
// ---------------------------------------------------------------------------

struct Conforming {
  void Save(OutputArchive* ar) const;
  void Load(InputArchive* ar);
};
static_assert(ArchiveSerializable<Conforming>);

// Missing Save entirely.
struct BadNoSave {
  void Load(InputArchive* ar);
};
static_assert(!ArchiveSerializable<BadNoSave>);

// Save exists but is not const-callable.
struct BadMutableSave {
  void Save(OutputArchive* ar);
  void Load(InputArchive* ar);
};
static_assert(!ArchiveSerializable<BadMutableSave>);

// Save takes the wrong archive type (asymmetric pair).
struct BadSaveArchive {
  void Save(InputArchive* ar) const;
  void Load(InputArchive* ar);
};
static_assert(!ArchiveSerializable<BadSaveArchive>);

// Load returns a value instead of filling in place: the round-trip would
// silently discard the rebuilt state.
struct BadLoadReturn {
  void Save(OutputArchive* ar) const;
  int Load(InputArchive* ar);
};
static_assert(!ArchiveSerializable<BadLoadReturn>);

// Static Load returning the wrong type fails the stream contract.
struct BadStaticLoad {
  void Save(std::ostream* out) const;
  static int Load(std::istream* in, const Corpus* corpus);
};
static_assert(!StreamPersistable<BadStaticLoad>);

// A query entry point without the OpsBudget parameter is not budgeted.
struct BadUnbudgetedQuery {
  std::vector<ObjectId> Query(const Box<2, double>& q,
                              std::span<const KeywordId> keywords,
                              QueryStats* stats) const;
};
static_assert(!BudgetedKwQueryable<BadUnbudgetedQuery, Box<2, double>>);

// Wrong result type (ids must be ObjectId, not raw offsets).
struct BadQueryResult {
  std::vector<int64_t> Query(const Box<2, double>& q,
                             std::span<const KeywordId> keywords,
                             QueryStats* stats, OpsBudget* budget) const;
};
static_assert(!BudgetedKwQueryable<BadQueryResult, Box<2, double>>);

// Not registered with the auditor: no friend declaration, no probe access.
struct BadUnaudited {
  std::vector<int> nodes_;  // Public member of the right name is not enough
  int options_ = 0;         // to make the family *auditable by the auditor*;
};                          // but the probes do see public members, so this
// type is (vacuously) directly-auditable. The real negative is a type with
// no such members at all:
struct BadNoArena {};
static_assert(DirectlyAuditable<BadUnaudited>);
static_assert(!DirectlyAuditable<BadNoArena>);
static_assert(!AuditableFamily<BadNoArena>);
static_assert(!DelegatingAuditable<BadNoArena>);

// ---------------------------------------------------------------------------
// A single runtime test so the binary registers with ctest; the real
// verification happened at compile time above.
// ---------------------------------------------------------------------------
TEST(Contracts, CompileTimeAssertionsHold) { SUCCEED(); }

}  // namespace
}  // namespace kwsc
