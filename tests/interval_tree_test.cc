// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Tests for the centered interval tree (structured-only baseline for
// temporal keyword search).

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "kdtree/interval_tree.h"
#include "test_util.h"
#include "workload/generator.h"

namespace kwsc {
namespace {

std::vector<uint32_t> Sorted(std::vector<uint32_t> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(IntervalTree, EmptyAndSingle) {
  IntervalTree<double> empty{std::span<const Box<1>>()};
  EXPECT_TRUE(empty.Overlapping(0, 1).empty());

  std::vector<Box<1>> one = {{{{2.0}}, {{5.0}}}};
  IntervalTree<double> tree{std::span<const Box<1>>(one)};
  EXPECT_EQ(tree.Overlapping(0, 10).size(), 1u);
  EXPECT_EQ(tree.Overlapping(5, 6).size(), 1u);   // Touch at endpoint.
  EXPECT_EQ(tree.Overlapping(0, 2).size(), 1u);
  EXPECT_TRUE(tree.Overlapping(5.1, 6).empty());
  EXPECT_TRUE(tree.Overlapping(0, 1.9).empty());
}

TEST(IntervalTree, StabbingMatchesDefinition) {
  std::vector<Box<1>> ivs = {{{{0.0}}, {{10.0}}},
                             {{{5.0}}, {{6.0}}},
                             {{{8.0}}, {{12.0}}}};
  IntervalTree<double> tree{std::span<const Box<1>>(ivs)};
  EXPECT_EQ(Sorted(tree.Stabbing(5.5)), (std::vector<uint32_t>{0, 1}));
  EXPECT_EQ(Sorted(tree.Stabbing(9.0)), (std::vector<uint32_t>{0, 2}));
  EXPECT_EQ(Sorted(tree.Stabbing(11.0)), (std::vector<uint32_t>{2}));
  EXPECT_TRUE(tree.Stabbing(13.0).empty());
}

TEST(IntervalTree, RandomizedAgainstBruteForce) {
  Rng rng(6021);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 50 + rng.NextBounded(500);
    auto ivs = GenerateRects<1>(n, PointDistribution::kUniform,
                                rng.UniformDouble(0.005, 0.2), &rng);
    IntervalTree<double> tree{std::span<const Box<1>>(ivs)};
    testing::ExpectAuditClean(tree);
    for (int q = 0; q < 20; ++q) {
      const double a = rng.UniformDouble(-0.2, 1.2);
      const double b = a + rng.UniformDouble(0, 0.3);
      std::vector<uint32_t> expected;
      for (uint32_t i = 0; i < ivs.size(); ++i) {
        if (ivs[i].lo[0] <= b && ivs[i].hi[0] >= a) expected.push_back(i);
      }
      EXPECT_EQ(Sorted(tree.Overlapping(a, b)), expected)
          << "trial " << trial << " query " << q;
    }
  }
}

TEST(IntervalTree, EarlyExitStopsEmission) {
  Rng rng(6022);
  auto ivs = GenerateRects<1>(300, PointDistribution::kUniform, 0.5, &rng);
  IntervalTree<double> tree{std::span<const Box<1>>(ivs)};
  int count = 0;
  tree.Overlapping(0.0, 1.0, [&count](uint32_t) { return ++count < 5; });
  EXPECT_EQ(count, 5);
}

TEST(IntervalTree, NestedAndDuplicateIntervals) {
  std::vector<Box<1>> ivs = {{{{0.0}}, {{100.0}}},
                             {{{10.0}}, {{20.0}}},
                             {{{10.0}}, {{20.0}}},
                             {{{14.0}}, {{15.0}}}};
  IntervalTree<double> tree{std::span<const Box<1>>(ivs)};
  EXPECT_EQ(Sorted(tree.Overlapping(14.5, 14.6)),
            (std::vector<uint32_t>{0, 1, 2, 3}));
  EXPECT_EQ(Sorted(tree.Overlapping(25, 30)), (std::vector<uint32_t>{0}));
}

}  // namespace
}  // namespace kwsc
