// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// The golden-format dataset: a tiny hand-written workload (no generators,
// no Rng — the bytes must be a pure function of the format code) and the
// exact Save/SaveFlat byte streams the committed files under tests/golden/
// were produced from. Shared by tests/golden_format_test.cc (regenerate,
// byte-compare, load, audit) and tests/make_golden.cc (the one-shot writer
// that created the committed files).
//
// If a golden comparison fails, the on-disk format changed: bump the owning
// format's constant in src/core/format_versions.h, regenerate FORMATS.lock
// (tools/run_abi.sh --update) AND the golden files (build/tests/make_golden
// tests/golden), and say so in the change description. Goldens exist to make
// that step deliberate, never accidental.

#ifndef KWSC_TESTS_GOLDEN_UTIL_H_
#define KWSC_TESTS_GOLDEN_UTIL_H_

#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/dynamic_index.h"
#include "core/orp_kw.h"
#include "core/sp_kw_box.h"
#include "geom/point.h"
#include "text/corpus.h"

namespace kwsc {
namespace golden {

/// 8 documents over a 6-keyword vocabulary, keywords sorted per document.
inline std::vector<Document> MakeDocuments() {
  std::vector<Document> docs;
  docs.emplace_back(Document{0, 1});
  docs.emplace_back(Document{1, 2});
  docs.emplace_back(Document{0, 3});
  docs.emplace_back(Document{2, 4});
  docs.emplace_back(Document{1, 5});
  docs.emplace_back(Document{0, 2, 4});
  docs.emplace_back(Document{3, 5});
  docs.emplace_back(Document{0, 5});
  return docs;
}

inline Corpus MakeCorpus() { return Corpus(MakeDocuments()); }

inline std::vector<Point<2>> MakePoints() {
  return {Point<2>{{1, 2}}, Point<2>{{3, 1}}, Point<2>{{2, 5}},
          Point<2>{{5, 4}}, Point<2>{{4, 2}}, Point<2>{{6, 6}},
          Point<2>{{0, 3}}, Point<2>{{7, 1}}};
}

inline FrameworkOptions MakeOptions() {
  FrameworkOptions opt;
  opt.k = 2;
  return opt;
}

/// The batch-dynamic index whose "KWDY" checkpoint is golden-locked: the
/// same 8 objects inserted one at a time through a capacity-2 buffer (so
/// several binary-counter carries fire), then two tombstones. Synchronous
/// carries (no merge pool), so the structure is a pure function of the
/// update sequence.
inline std::unique_ptr<DynamicIndex<OrpKwIndex<2>>> MakeDynamic() {
  auto dyn = std::make_unique<DynamicIndex<OrpKwIndex<2>>>(
      MakeOptions(), /*buffer_capacity=*/2);
  const std::vector<Point<2>> pts = MakePoints();
  std::vector<Document> docs = MakeDocuments();
  for (size_t i = 0; i < pts.size(); ++i) {
    dyn->Insert(pts[i], std::move(docs[i]));
  }
  dyn->Delete(2);
  dyn->Delete(5);
  return dyn;
}

/// name -> byte stream, for all six golden files.
struct GoldenFile {
  std::string name;
  std::string bytes;
};

inline std::vector<GoldenFile> RenderAll() {
  const Corpus corpus = MakeCorpus();
  const std::vector<Point<2>> pts = MakePoints();
  const OrpKwIndex<2> orp(pts, &corpus, MakeOptions());
  const SpKwBoxIndex<2> sp(pts, &corpus, MakeOptions());

  std::vector<GoldenFile> files;
  {
    std::ostringstream out;
    corpus.Save(&out);
    files.push_back({"corpus_v1.bin", out.str()});
  }
  {
    std::ostringstream out;
    orp.Save(&out);
    files.push_back({"orp_kw_v1.bin", out.str()});
  }
  {
    std::ostringstream out;
    orp.SaveFlat(&out);
    files.push_back({"orp_kw_v2.bin", out.str()});
  }
  {
    std::ostringstream out;
    sp.Save(&out);
    files.push_back({"sp_kw_box_v1.bin", out.str()});
  }
  {
    std::ostringstream out;
    sp.SaveFlat(&out);
    files.push_back({"sp_kw_box_v2.bin", out.str()});
  }
  {
    std::ostringstream out;
    MakeDynamic()->SaveCheckpoint(&out);
    files.push_back({"dynamic_checkpoint_v1.bin", out.str()});
  }
  return files;
}

}  // namespace golden
}  // namespace kwsc

#endif  // KWSC_TESTS_GOLDEN_UTIL_H_
