// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Differential and stress tests: every index and both baselines answer the
// same random queries over shared instances and must agree with each other
// and with brute force — across k, skew, distributions, degenerate data,
// and degenerate queries.

#include <gtest/gtest.h>

#include <algorithm>

#include "baseline/keywords_only.h"
#include "baseline/structured_only.h"
#include "common/random.h"
#include "core/lc_kw.h"
#include "core/orp_kw.h"
#include "core/sp_kw_box.h"
#include "test_util.h"
#include "workload/generator.h"

namespace kwsc {
namespace {

using testing::BruteBox;
using testing::Sorted;

struct DiffParam {
  uint32_t n;
  int k;
  double zipf;
  uint32_t vocab;
  uint32_t min_doc;
  uint32_t max_doc;
  PointDistribution dist;
};

class DifferentialTest : public ::testing::TestWithParam<DiffParam> {};

TEST_P(DifferentialTest, FiveImplementationsAgree) {
  const auto p = GetParam();
  Rng rng(777000 + p.n * 13 + p.k * 7 + p.vocab);
  CorpusSpec spec;
  spec.num_objects = p.n;
  spec.vocab_size = p.vocab;
  spec.zipf_skew = p.zipf;
  spec.min_doc_len = p.min_doc;
  spec.max_doc_len = p.max_doc;
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<2>(p.n, p.dist, &rng);

  FrameworkOptions opt;
  opt.k = p.k;
  OrpKwIndex<2> orp(pts, &corpus, opt);
  SpKwBoxIndex<2> sp_box(pts, &corpus, opt);
  FrameworkOptions exact = opt;
  exact.exact_cell_tests = true;
  SpKwBoxIndex<2> sp_exact(pts, &corpus, exact);
  LcKwIndex<2> hs(pts, &corpus, opt);
  StructuredOnlyBaseline<2> structured(pts, &corpus);
  KeywordsOnlyBaseline<2> keywords(pts, &corpus);

  for (int trial = 0; trial < 8; ++trial) {
    auto box = GenerateBoxQuery(std::span<const Point<2>>(pts),
                                rng.UniformDouble(0.005, 0.8), &rng);
    const KeywordPick picks[] = {KeywordPick::kFrequent,
                                 KeywordPick::kUniform,
                                 KeywordPick::kCooccurring};
    auto kws = PickQueryKeywords(corpus, p.k, picks[trial % 3], &rng);
    const auto expected =
        BruteBox(std::span<const Point<2>>(pts), corpus, box, kws);
    const auto convex = BoxToConvexQuery(box);
    EXPECT_EQ(Sorted(orp.Query(box, kws)), expected);
    EXPECT_EQ(Sorted(sp_box.Query(convex, kws)), expected);
    EXPECT_EQ(Sorted(sp_exact.Query(convex, kws)), expected);
    EXPECT_EQ(Sorted(hs.Query(convex, kws)), expected);
    EXPECT_EQ(Sorted(structured.QueryBox(box, kws)), expected);
    EXPECT_EQ(Sorted(keywords.QueryBox(box, kws)), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DifferentialTest,
    ::testing::Values(
        DiffParam{50, 2, 1.0, 12, 2, 4, PointDistribution::kUniform},
        DiffParam{300, 2, 0.0, 40, 2, 6, PointDistribution::kClustered},
        DiffParam{300, 3, 1.5, 25, 3, 8, PointDistribution::kDiagonal},
        DiffParam{800, 2, 1.0, 100, 2, 5, PointDistribution::kUniform},
        DiffParam{800, 4, 0.8, 30, 4, 9, PointDistribution::kClustered},
        DiffParam{1500, 2, 2.0, 60, 2, 6, PointDistribution::kUniform},
        DiffParam{400, 5, 0.5, 20, 5, 10, PointDistribution::kUniform},
        DiffParam{400, 6, 0.5, 18, 6, 12, PointDistribution::kClustered}));

TEST(Degenerate, AllPointsIdentical) {
  Rng rng(881);
  const uint32_t n = 200;
  std::vector<Document> docs;
  std::vector<Point<2>> pts(n, Point<2>{{0.5, 0.5}});
  for (uint32_t i = 0; i < n; ++i) {
    docs.push_back(Document{static_cast<KeywordId>(i % 4),
                            static_cast<KeywordId>(4 + i % 3)});
  }
  Corpus corpus(std::move(docs));
  FrameworkOptions opt;
  opt.k = 2;
  OrpKwIndex<2> orp(pts, &corpus, opt);
  SpKwBoxIndex<2> sp(pts, &corpus, opt);
  std::vector<KeywordId> kws = {0, 4};
  const auto expected = BruteBox(std::span<const Point<2>>(pts), corpus,
                                 Box<2>{{{0, 0}}, {{1, 1}}}, kws);
  EXPECT_FALSE(expected.empty());
  EXPECT_EQ(Sorted(orp.Query({{{0, 0}}, {{1, 1}}}, kws)), expected);
  EXPECT_EQ(Sorted(sp.Query(BoxToConvexQuery(Box<2>{{{0, 0}}, {{1, 1}}}),
                            kws)),
            expected);
  // A box missing the shared location reports nothing.
  EXPECT_TRUE(orp.Query({{{0.6, 0.6}}, {{1, 1}}}, kws).empty());
}

TEST(Degenerate, SingleObject) {
  Corpus corpus({Document{3, 7}});
  std::vector<Point<2>> pts = {{{0.25, 0.75}}};
  FrameworkOptions opt;
  opt.k = 2;
  OrpKwIndex<2> index(pts, &corpus, opt);
  std::vector<KeywordId> hit = {3, 7};
  std::vector<KeywordId> miss = {3, 8};
  EXPECT_EQ(index.Query(Box<2>::Everything(), hit).size(), 1u);
  EXPECT_TRUE(index.Query(Box<2>::Everything(), miss).empty());
  EXPECT_TRUE(index.Query({{{0.3, 0}}, {{1, 1}}}, hit).empty());
}

TEST(Degenerate, IdenticalDocumentsEverywhere) {
  Rng rng(882);
  const uint32_t n = 300;
  std::vector<Document> docs(n, Document{0, 1, 2});
  auto pts = GeneratePoints<2>(n, PointDistribution::kUniform, &rng);
  Corpus corpus(std::move(docs));
  FrameworkOptions opt;
  opt.k = 3;
  OrpKwIndex<2> index(pts, &corpus, opt);
  std::vector<KeywordId> kws = {0, 1, 2};
  for (int trial = 0; trial < 10; ++trial) {
    auto q = GenerateBoxQuery(std::span<const Point<2>>(pts), 0.2, &rng);
    EXPECT_EQ(Sorted(index.Query(q, kws)),
              BruteBox(std::span<const Point<2>>(pts), corpus, q, kws));
  }
}

TEST(Degenerate, PointBoxQuery) {
  // A zero-volume query box exactly on a data point.
  Rng rng(883);
  CorpusSpec spec;
  spec.num_objects = 150;
  spec.vocab_size = 10;
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<2>(150, PointDistribution::kUniform, &rng);
  FrameworkOptions opt;
  opt.k = 2;
  OrpKwIndex<2> index(pts, &corpus, opt);
  for (ObjectId e = 0; e < 20; ++e) {
    Box<2> q{pts[e], pts[e]};
    const Document& doc = corpus.doc(e);
    if (doc.size() < 2) continue;
    std::vector<KeywordId> kws = {doc.keywords()[0], doc.keywords()[1]};
    auto got = index.Query(q, kws);
    EXPECT_EQ(Sorted(got),
              BruteBox(std::span<const Point<2>>(pts), corpus, q, kws));
    EXPECT_TRUE(std::find(got.begin(), got.end(), e) != got.end());
  }
}

TEST(Degenerate, ExtremeCoordinates) {
  Rng rng(884);
  const uint32_t n = 200;
  std::vector<Document> docs;
  std::vector<Point<2>> pts;
  for (uint32_t i = 0; i < n; ++i) {
    docs.push_back(Document{static_cast<KeywordId>(i % 5),
                            static_cast<KeywordId>(5 + i % 4)});
    pts.push_back({{rng.UniformDouble(-1e9, 1e9),
                    rng.UniformDouble(-1e-9, 1e-9)}});
  }
  Corpus corpus(std::move(docs));
  FrameworkOptions opt;
  opt.k = 2;
  OrpKwIndex<2> index(pts, &corpus, opt);
  for (int trial = 0; trial < 10; ++trial) {
    Box<2> q{{{rng.UniformDouble(-1e9, 0), rng.UniformDouble(-1e-9, 0)}},
             {{rng.UniformDouble(0, 1e9), rng.UniformDouble(0, 1e-9)}}};
    std::vector<KeywordId> kws = {static_cast<KeywordId>(trial % 5),
                                  static_cast<KeywordId>(5 + trial % 4)};
    EXPECT_EQ(Sorted(index.Query(q, kws)),
              BruteBox(std::span<const Point<2>>(pts), corpus, q, kws));
  }
}

TEST(Degenerate, KEqualsDocumentSize) {
  // Every document has exactly k keywords; only exact-match objects report.
  Rng rng(885);
  const int k = 4;
  std::vector<Document> docs;
  std::vector<Point<2>> pts;
  for (uint32_t i = 0; i < 400; ++i) {
    std::vector<KeywordId> kws;
    for (int j = 0; j < k; ++j) {
      kws.push_back(static_cast<KeywordId>((i + j * 7) % 12));
    }
    docs.emplace_back(std::move(kws));
    pts.push_back({{rng.NextDouble(), rng.NextDouble()}});
  }
  // Some generated docs may dedup below size k; keep only full ones by
  // padding with a unique filler keyword.
  for (uint32_t i = 0; i < docs.size(); ++i) {
    if (docs[i].size() < static_cast<size_t>(k)) {
      std::vector<KeywordId> padded(docs[i].begin(), docs[i].end());
      while (padded.size() < static_cast<size_t>(k)) {
        padded.push_back(static_cast<KeywordId>(100 + i));
      }
      docs[i] = Document(padded);
    }
  }
  Corpus corpus(std::move(docs));
  FrameworkOptions opt;
  opt.k = k;
  OrpKwIndex<2> index(pts, &corpus, opt);
  for (int trial = 0; trial < 10; ++trial) {
    const ObjectId e = static_cast<ObjectId>(rng.NextBounded(400));
    std::vector<KeywordId> kws(corpus.doc(e).begin(), corpus.doc(e).end());
    kws.resize(k);
    auto got = index.Query(Box<2>::Everything(), kws);
    std::vector<ObjectId> expected;
    for (ObjectId f = 0; f < corpus.num_objects(); ++f) {
      if (corpus.ContainsAll(f, kws)) expected.push_back(f);
    }
    EXPECT_EQ(Sorted(got), expected);
    EXPECT_FALSE(got.empty());  // At least object e itself.
  }
}

}  // namespace
}  // namespace kwsc
