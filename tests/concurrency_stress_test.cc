// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Stress test for the internally locked MetricsRegistry (obs/metrics.h)
// under real concurrency: several driver threads run their own QueryEngine
// batches against one shared registry while others merge and snapshot it.
// Built for the tsan preset (it is in the tsan test filter), where any
// locking mistake in the Mutex/CondVar/registry retrofit is a hard report;
// under the plain build it still pins down the *exactness* contract —
// counter totals and the deterministic work histogram are identical to a
// sequential fold, no matter how the concurrent updates interleave.
//
// Everything is seeded and bounded: fixed Rng seeds, a small corpus, and a
// fixed number of batches per thread, so one run is a few hundred
// milliseconds even under tsan on one core.

#include <cstdint>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/orp_kw.h"
#include "core/query_engine.h"
#include "obs/histogram.h"
#include "obs/metrics.h"
#include "test_util.h"
#include "text/corpus.h"
#include "workload/generator.h"

namespace kwsc {
namespace {

constexpr int kDrivers = 4;
constexpr int kBatchesPerDriver = 4;
constexpr int kQueriesPerBatch = 12;

struct StressWorld {
  Corpus corpus;
  std::vector<Point<2>> points;
  std::unique_ptr<OrpKwIndex<2>> index;
  // One pre-generated batch sequence per driver, so the concurrent run and
  // the sequential reference fold see byte-identical workloads.
  std::vector<std::vector<std::vector<BatchQuery<Box<2>>>>> batches;
};

StressWorld BuildWorld() {
  StressWorld world;
  Rng rng(9301);
  CorpusSpec spec;
  spec.num_objects = 900;
  spec.vocab_size = 80;
  world.corpus = GenerateCorpus(spec, &rng);
  world.points = GeneratePoints<2>(900, PointDistribution::kClustered, &rng);
  FrameworkOptions opt;
  opt.k = 2;
  world.index =
      std::make_unique<OrpKwIndex<2>>(world.points, &world.corpus, opt);
  world.batches.resize(kDrivers);
  for (int d = 0; d < kDrivers; ++d) {
    Rng driver_rng(9400 + d);
    for (int b = 0; b < kBatchesPerDriver; ++b) {
      std::vector<BatchQuery<Box<2>>> batch;
      for (int q = 0; q < kQueriesPerBatch; ++q) {
        batch.push_back(
            {GenerateBoxQuery(std::span<const Point<2>>(world.points),
                              driver_rng.UniformDouble(0.01, 0.3),
                              &driver_rng),
             PickQueryKeywords(world.corpus, 2, KeywordPick::kCooccurring,
                               &driver_rng)});
      }
      world.batches[d].push_back(std::move(batch));
    }
  }
  return world;
}

// The tentpole scenario: one registry shared by engines on different
// threads. Totals must come out exact — the commutative fold is the whole
// reason the registry may be shared — and the deterministic work histogram
// must equal the sequential reference bucket for bucket.
TEST(ConcurrencyStress, SharedRegistryAcrossConcurrentEnginesIsExact) {
  const StressWorld world = BuildWorld();

  // Sequential reference: same batches, one thread, its own registry.
  obs::MetricsRegistry reference;
  for (int d = 0; d < kDrivers; ++d) {
    FrameworkOptions opt;
    opt.num_threads = 1;
    QueryEngine<OrpKwIndex<2>> engine(world.index.get(), opt, &reference);
    for (const auto& batch : world.batches[d]) engine.Run(batch);
  }

  obs::MetricsRegistry shared;
  std::vector<std::thread> drivers;
  drivers.reserve(kDrivers);
  for (int d = 0; d < kDrivers; ++d) {
    drivers.emplace_back([&world, &shared, d] {
      // Each driver's engine itself shards across 2 threads, so the
      // registry sees folds from engine-internal pool workers too.
      FrameworkOptions opt;
      opt.num_threads = 2;
      QueryEngine<OrpKwIndex<2>> engine(world.index.get(), opt, &shared);
      for (const auto& batch : world.batches[d]) engine.Run(batch);
    });
  }
  for (std::thread& t : drivers) t.join();

  constexpr uint64_t kBatches = uint64_t{kDrivers} * kBatchesPerDriver;
  constexpr uint64_t kQueries = kBatches * kQueriesPerBatch;
  EXPECT_EQ(shared.CounterValue("engine.batches"), kBatches);
  EXPECT_EQ(shared.CounterValue("engine.queries"), kQueries);
  EXPECT_EQ(shared.CounterValue("engine.batches"),
            reference.CounterValue("engine.batches"));
  EXPECT_EQ(shared.CounterValue("engine.queries"),
            reference.CounterValue("engine.queries"));
  EXPECT_EQ(shared.CounterValue("engine.ops_budget_exhausted"),
            reference.CounterValue("engine.ops_budget_exhausted"));

  // Per-query work is deterministic, so the concurrent fold must reproduce
  // the sequential histogram exactly; latency values are wall time, so only
  // the sample count is pinned.
  const obs::Histogram work =
      shared.HistogramSnapshot("engine.query_work_objects");
  EXPECT_TRUE(work == reference.HistogramSnapshot("engine.query_work_objects"))
      << work.DebugString();
  EXPECT_EQ(shared.HistogramSnapshot("engine.query_latency_ns").count(),
            kQueries);
}

// Merge storm: every thread folds a known local registry into the shared
// one while readers snapshot it mid-flight. The end state is the exact sum;
// every intermediate snapshot is a consistent copy (the snapshot accessors
// copy under the lock, so a torn map would be a tsan report and a crash).
TEST(ConcurrencyStress, ConcurrentMergesAndSnapshotsStayConsistent) {
  constexpr int kMergers = 4;
  constexpr int kRounds = 25;
  obs::MetricsRegistry shared;
  std::vector<std::thread> threads;
  threads.reserve(kMergers + 1);
  for (int m = 0; m < kMergers; ++m) {
    threads.emplace_back([&shared, m] {
      for (int r = 0; r < kRounds; ++r) {
        obs::MetricsRegistry local;
        local.AddCounter("stress.ticks", static_cast<uint64_t>(m + 1));
        local.SetGauge("stress.last_merger", static_cast<double>(m));
        local.RecordHistogram("stress.values",
                              static_cast<uint64_t>(m * kRounds + r));
        shared.Merge(local);
      }
    });
  }
  threads.emplace_back([&shared] {
    for (int r = 0; r < kRounds * kMergers; ++r) {
      const auto counters = shared.counters();
      const auto it = counters.find("stress.ticks");
      if (it != counters.end()) {
        EXPECT_LE(it->second,
                  uint64_t{kRounds} * (kMergers * (kMergers + 1)) / 2);
      }
      (void)shared.histograms();
    }
  });
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(shared.CounterValue("stress.ticks"),
            uint64_t{kRounds} * (kMergers * (kMergers + 1)) / 2);
  EXPECT_EQ(shared.HistogramSnapshot("stress.values").count(),
            uint64_t{kRounds} * kMergers);
  const double last = shared.GaugeValue("stress.last_merger");
  EXPECT_GE(last, 0.0);
  EXPECT_LT(last, static_cast<double>(kMergers));
}

// Cross merges both ways at once: A.Merge(B) concurrent with B.Merge(A).
// Merge snapshots its source before taking its own lock, so this cannot
// deadlock (the two locks are never held together); the test completing at
// all is the assertion, plus monotonicity of what each side absorbed.
TEST(ConcurrencyStress, CrossMergeBothDirectionsDoesNotDeadlock) {
  constexpr int kRounds = 50;
  obs::MetricsRegistry a;
  obs::MetricsRegistry b;
  a.AddCounter("seed", 1);
  b.AddCounter("seed", 1);
  std::thread forward([&a, &b] {
    for (int r = 0; r < kRounds; ++r) a.Merge(b);
  });
  std::thread backward([&a, &b] {
    for (int r = 0; r < kRounds; ++r) b.Merge(a);
  });
  forward.join();
  backward.join();
  EXPECT_GE(a.CounterValue("seed"), uint64_t{1} + kRounds);
  EXPECT_GE(b.CounterValue("seed"), uint64_t{1} + kRounds);
}

}  // namespace
}  // namespace kwsc
