// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Determinism contract of the parallel build: for every thread count, the
// constructed index is the SAME index — not just query-equivalent but
// byte-identical under Save. Forked subtrees build into private arenas that
// are spliced back in DFS preorder, so node layout, child indices, and every
// NodeDirectory match the sequential build exactly. These tests pin that
// contract, plus the degenerate-weight fix in WeightedMedianIndex.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include "common/random.h"
#include "core/dim_reduction.h"
#include "core/framework.h"
#include "core/orp_kw.h"
#include "test_util.h"
#include "text/corpus.h"
#include "workload/generator.h"

namespace kwsc {
namespace {

using testing::BruteBox;
using testing::Sorted;

template <typename Index>
std::string SaveBytes(const Index& index) {
  std::stringstream stream;
  index.Save(&stream);
  return stream.str();
}

TEST(ParallelBuild, OrpKwSaveBytesIdenticalAcrossThreadCounts) {
  Rng rng(7101);
  CorpusSpec spec;
  spec.num_objects = 3000;
  spec.vocab_size = 150;
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<2>(3000, PointDistribution::kClustered, &rng);

  FrameworkOptions opt;
  opt.k = 2;
  opt.num_threads = 1;
  OrpKwIndex<2> sequential(pts, &corpus, opt);
  const std::string expected = SaveBytes(sequential);

  for (int threads : {2, 4, 8}) {
    opt.num_threads = threads;
    OrpKwIndex<2> parallel(pts, &corpus, opt);
    EXPECT_EQ(parallel.num_nodes(), sequential.num_nodes());
    ASSERT_EQ(SaveBytes(parallel), expected) << "num_threads=" << threads;
  }
}

TEST(ParallelBuild, OrpKwSaveBytesIdenticalForK3) {
  Rng rng(7102);
  CorpusSpec spec;
  spec.num_objects = 1500;
  spec.vocab_size = 80;
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<2>(1500, PointDistribution::kUniform, &rng);

  FrameworkOptions opt;
  opt.k = 3;
  opt.num_threads = 1;
  OrpKwIndex<2> sequential(pts, &corpus, opt);
  opt.num_threads = 4;
  OrpKwIndex<2> parallel(pts, &corpus, opt);
  ASSERT_EQ(SaveBytes(parallel), SaveBytes(sequential));
}

TEST(ParallelBuild, OrpKwParallelAnswersMatchOracle) {
  Rng rng(7103);
  CorpusSpec spec;
  spec.num_objects = 2000;
  spec.vocab_size = 120;
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<2>(2000, PointDistribution::kClustered, &rng);
  FrameworkOptions opt;
  opt.k = 2;
  opt.num_threads = 4;
  OrpKwIndex<2> index(pts, &corpus, opt);

  for (int trial = 0; trial < 20; ++trial) {
    auto q = GenerateBoxQuery(std::span<const Point<2>>(pts),
                              rng.UniformDouble(0.01, 0.4), &rng);
    auto kws = PickQueryKeywords(corpus, 2, KeywordPick::kCooccurring, &rng);
    auto got = index.Query(q, kws);
    auto expected = BruteBox(std::span<const Point<2>>(pts), corpus, q, kws);
    ASSERT_EQ(Sorted(got), expected) << "trial " << trial;
  }
}

TEST(ParallelBuild, DimRedSameTreeAndAnswersAcrossThreadCounts) {
  Rng rng(7104);
  CorpusSpec spec;
  spec.num_objects = 900;
  spec.vocab_size = 90;
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<3>(900, PointDistribution::kUniform, &rng);

  FrameworkOptions opt;
  opt.k = 2;
  opt.num_threads = 1;
  DimRedOrpKwIndex<3> sequential(pts, &corpus, opt);
  opt.num_threads = 4;
  DimRedOrpKwIndex<3> parallel(pts, &corpus, opt);

  ASSERT_EQ(parallel.num_nodes(), sequential.num_nodes());
  const DimRedShape seq_shape = sequential.Shape();
  const DimRedShape par_shape = parallel.Shape();
  EXPECT_EQ(par_shape.levels, seq_shape.levels);
  EXPECT_EQ(par_shape.nodes_per_level, seq_shape.nodes_per_level);
  EXPECT_EQ(par_shape.max_fanout_per_level, seq_shape.max_fanout_per_level);

  for (int trial = 0; trial < 12; ++trial) {
    auto q = GenerateBoxQuery(std::span<const Point<3>>(pts),
                              rng.UniformDouble(0.05, 0.5), &rng);
    auto kws = PickQueryKeywords(corpus, 2, KeywordPick::kFrequent, &rng);
    // Exact vector equality: identical trees must produce identical
    // emission orders, not merely identical sets.
    ASSERT_EQ(parallel.Query(q, kws), sequential.Query(q, kws))
        << "trial " << trial;
  }
}

TEST(WeightedMedian, PrefixRuleMatchesSpec) {
  const std::vector<uint64_t> uniform = {1, 1, 1, 1, 1};
  EXPECT_EQ(WeightedMedianIndex(uniform.size(),
                                [&](size_t i) { return uniform[i]; }),
            2u);
  const std::vector<uint64_t> skewed = {1, 1, 6, 1, 1};
  EXPECT_EQ(WeightedMedianIndex(skewed.size(),
                                [&](size_t i) { return skewed[i]; }),
            2u);
  EXPECT_EQ(WeightedMedianIndex(1, [](size_t) { return uint64_t{5}; }), 0u);
}

TEST(WeightedMedian, DominantWeightFallsBackToCardinalityMedian) {
  // All weight on the first element: the prefix rule would return 0 and the
  // split would produce an empty left child plus a right child holding
  // everything else — the degenerate chain the fallback exists to break.
  const std::vector<uint64_t> front = {100, 1, 1, 1, 1};
  EXPECT_EQ(WeightedMedianIndex(front.size(),
                                [&](size_t i) { return front[i]; }),
            2u);
  // All weight on the last element: mirrored degeneracy.
  const std::vector<uint64_t> back = {1, 1, 1, 1, 100};
  EXPECT_EQ(WeightedMedianIndex(back.size(),
                                [&](size_t i) { return back[i]; }),
            2u);
  // n == 2 has no non-degenerate option; the prefix rule stands.
  const std::vector<uint64_t> pair = {9, 1};
  EXPECT_EQ(WeightedMedianIndex(pair.size(),
                                [&](size_t i) { return pair[i]; }),
            0u);
}

TEST(WeightedMedian, SkewedCorpusBuildsShallowTreeAndAnswersCorrectly) {
  // Geometric document sizes arranged so heavy documents sort first on both
  // dimensions — the layout that used to trigger one-pivot-per-level
  // peeling. Depth must stay logarithmic-ish and answers exact.
  const uint32_t n = 400;
  std::vector<Document> docs;
  std::vector<Point<2>> pts;
  Rng rng(7105);
  for (uint32_t i = 0; i < n; ++i) {
    const uint32_t size = i < 8 ? (256u >> i) : 1u;
    std::vector<KeywordId> kws;
    for (uint32_t w = 0; w < std::max(1u, size); ++w) {
      kws.push_back(w);  // Heavy docs contain keywords 0..size-1.
    }
    docs.push_back(Document(std::move(kws)));
    Point<2> p;
    p[0] = static_cast<double>(i);
    p[1] = static_cast<double>(i);
    pts.push_back(p);
  }
  Corpus corpus(std::move(docs));
  FrameworkOptions opt;
  opt.k = 2;
  OrpKwIndex<2> index(pts, &corpus, opt);

  const double log_bound =
      2.0 * std::log2(static_cast<double>(corpus.total_weight())) + 2.0;
  EXPECT_LE(index.Depth(), static_cast<int>(log_bound));

  for (int trial = 0; trial < 10; ++trial) {
    auto q = GenerateBoxQuery(std::span<const Point<2>>(pts),
                              rng.UniformDouble(0.05, 0.6), &rng);
    const std::vector<KeywordId> kws = {0, 1};
    auto expected = BruteBox(std::span<const Point<2>>(pts), corpus, q, kws);
    ASSERT_EQ(Sorted(index.Query(q, kws)), expected) << "trial " << trial;
  }
}

}  // namespace
}  // namespace kwsc
