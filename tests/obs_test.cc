// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Unit tests for the observability layer (src/obs/): the deterministic
// log-bucket histogram (bucketing, quantiles, exact merge), order statistics
// (the true-median regression test for bench_util's MedianMicros), the
// metrics registry, and the schema-versioned JSON exporter.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "common/random.h"
#include "obs/histogram.h"
#include "obs/json_exporter.h"
#include "obs/metrics.h"
#include "obs/stats.h"

namespace kwsc {
namespace obs {
namespace {

TEST(Median, OddCountIsMiddleElement) {
  EXPECT_DOUBLE_EQ(Median({5.0, 1.0, 3.0}), 3.0);
  EXPECT_DOUBLE_EQ(Median({7.0}), 7.0);
}

// Regression: MedianMicros used to return the upper-middle element
// (times[size/2]) for even rep counts — {1,2,3,4} gave 3, not 2.5.
TEST(Median, EvenCountAveragesTheTwoMiddleElements) {
  EXPECT_DOUBLE_EQ(Median({1.0, 2.0, 3.0, 4.0}), 2.5);
  EXPECT_DOUBLE_EQ(Median({4.0, 1.0}), 2.5);
  EXPECT_DOUBLE_EQ(Median({10.0, 0.0, 0.0, 10.0, 10.0, 0.0}), 5.0);
}

TEST(Histogram, SmallValuesGetExactBuckets) {
  for (uint64_t v = 0; v < Histogram::kSubBuckets; ++v) {
    const int index = Histogram::BucketIndex(v);
    EXPECT_EQ(Histogram::BucketLowerBound(index), v);
    EXPECT_EQ(Histogram::BucketUpperBound(index), v);
  }
}

TEST(Histogram, BucketsPartitionTheValueAxis) {
  // Every bucket's range maps back to that bucket, and consecutive buckets
  // tile the axis without gaps or overlap.
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    const uint64_t lo = Histogram::BucketLowerBound(i);
    const uint64_t hi = Histogram::BucketUpperBound(i);
    ASSERT_LE(lo, hi) << "bucket " << i;
    EXPECT_EQ(Histogram::BucketIndex(lo), i);
    EXPECT_EQ(Histogram::BucketIndex(hi), i);
    if (i + 1 < Histogram::kNumBuckets) {
      EXPECT_EQ(Histogram::BucketLowerBound(i + 1), hi + 1);
    } else {
      EXPECT_EQ(hi, std::numeric_limits<uint64_t>::max());
    }
  }
}

TEST(Histogram, BoundedRelativeError) {
  Rng rng(404);
  for (int trial = 0; trial < 10000; ++trial) {
    const uint64_t v = rng.NextBounded(uint64_t{1} << 48) + 1;
    const int i = Histogram::BucketIndex(v);
    const double lo = static_cast<double>(Histogram::BucketLowerBound(i));
    const double hi = static_cast<double>(Histogram::BucketUpperBound(i));
    // Bucket width <= value / kSubBuckets: <= 12.5% relative rounding.
    EXPECT_LE(hi - lo + 1, static_cast<double>(v) / Histogram::kSubBuckets +
                               1.0)
        << "value " << v;
  }
}

TEST(Histogram, CountSumMinMaxExact) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.ValueAtQuantile(0.5), 0u);
  h.Record(7);
  h.Record(3);
  h.Record(1000);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 1010u);
  EXPECT_EQ(h.min(), 3u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_NEAR(h.Mean(), 1010.0 / 3.0, 1e-9);
}

TEST(Histogram, QuantilesOnExactBuckets) {
  // Values < kSubBuckets land in exact buckets, so quantiles are exact.
  Histogram h;
  for (uint64_t v = 0; v < 8; ++v) h.Record(v);  // One each of 0..7.
  EXPECT_EQ(h.ValueAtQuantile(0.0), 0u);
  EXPECT_EQ(h.P50(), 3u);   // rank 4 -> value 3.
  EXPECT_EQ(h.P99(), 7u);   // rank 8 -> value 7.
  EXPECT_EQ(h.ValueAtQuantile(1.0), 7u);
}

TEST(Histogram, QuantileWithinBucketBoundsOfExactRankValue) {
  Histogram h;
  for (uint64_t v = 0; v < 100; ++v) h.Record(v);
  // Rank 50 is value 49; the estimator returns its bucket's upper bound.
  const int b = Histogram::BucketIndex(49);
  EXPECT_GE(h.P50(), Histogram::BucketLowerBound(b));
  EXPECT_LE(h.P50(), Histogram::BucketUpperBound(b));
  // Quantile(1.0) clamps to the observed max even mid-bucket.
  EXPECT_EQ(h.ValueAtQuantile(1.0), 99u);
}

TEST(Histogram, MergeEqualsSingleRecorder) {
  Rng rng(505);
  std::vector<uint64_t> values;
  for (int i = 0; i < 2000; ++i) values.push_back(rng.NextBounded(1 << 20));

  Histogram all;
  for (uint64_t v : values) all.Record(v);

  // Any sharding and any merge order reproduce the same histogram.
  for (size_t shards : {2u, 3u, 7u}) {
    std::vector<Histogram> parts(shards);
    for (size_t i = 0; i < values.size(); ++i) {
      parts[i % shards].Record(values[i]);
    }
    Histogram merged_forward;
    for (const Histogram& p : parts) merged_forward.Merge(p);
    Histogram merged_backward;
    for (size_t s = shards; s-- > 0;) merged_backward.Merge(parts[s]);
    EXPECT_TRUE(merged_forward == all) << shards << " shards";
    EXPECT_TRUE(merged_backward == all) << shards << " shards reversed";
    EXPECT_EQ(merged_forward.DebugString(), all.DebugString());
  }
}

TEST(Histogram, MergeWithEmptyIsIdentity) {
  Histogram h;
  h.Record(42);
  Histogram empty;
  h.Merge(empty);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 42u);
  EXPECT_EQ(h.max(), 42u);
  Histogram other;
  other.Merge(h);
  EXPECT_TRUE(other == h);
}

TEST(Histogram, RecordMicrosConvertsToNanos) {
  Histogram h;
  h.RecordMicros(1.5);    // 1500 ns.
  h.RecordMicros(-3.0);   // Clamped to 0.
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.min(), 0u);
  const int b = Histogram::BucketIndex(1500);
  EXPECT_GE(h.max(), Histogram::BucketLowerBound(b));
  EXPECT_LE(h.max(), Histogram::BucketUpperBound(b));
}

TEST(MetricsRegistry, CountersAccumulateAndDefaultToZero) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.CounterValue("absent"), 0u);
  registry.AddCounter("queries", 3);
  registry.AddCounter("queries", 4);
  EXPECT_EQ(registry.CounterValue("queries"), 7u);
}

TEST(MetricsRegistry, GaugesOverwrite) {
  MetricsRegistry registry;
  registry.SetGauge("build_ms", 10.0);
  registry.SetGauge("build_ms", 12.5);
  EXPECT_DOUBLE_EQ(registry.GaugeValue("build_ms"), 12.5);
}

TEST(MetricsRegistry, IterationIsSortedByName) {
  MetricsRegistry registry;
  registry.AddCounter("zebra", 1);
  registry.AddCounter("alpha", 1);
  registry.AddCounter("mid", 1);
  std::vector<std::string> names;
  for (const auto& [name, value] : registry.counters()) names.push_back(name);
  EXPECT_EQ(names, (std::vector<std::string>{"alpha", "mid", "zebra"}));
}

TEST(MetricsRegistry, MergeFoldsEverything) {
  MetricsRegistry a;
  a.AddCounter("c", 1);
  a.SetGauge("g", 1.0);
  a.RecordHistogram("h", 5);
  MetricsRegistry b;
  b.AddCounter("c", 2);
  b.SetGauge("g", 2.0);
  b.RecordHistogram("h", 6);
  a.Merge(b);
  EXPECT_EQ(a.CounterValue("c"), 3u);
  EXPECT_DOUBLE_EQ(a.GaugeValue("g"), 2.0);
  EXPECT_EQ(a.histograms().at("h").count(), 2u);
  EXPECT_EQ(a.histograms().at("h").min(), 5u);
  EXPECT_EQ(a.histograms().at("h").max(), 6u);
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(JsonExporter, WritesSchemaVersionedRecord) {
  JsonExporter exporter("obs_test");
  exporter.AddPoint({{"N", 1024.0}, {"build_ms", 1.5}});
  exporter.AddExponent("work vs N", 0.51, 0.5);
  exporter.AddCounter("queries", 64);
  exporter.SetGauge("build_wall_ms", 12.5);
  Histogram latency;
  for (uint64_t v = 100; v < 200; ++v) latency.Record(v);
  exporter.AddHistogram("query_latency_ns", latency, "ns");

  const std::string path = exporter.Write();
  ASSERT_EQ(path, "BENCH_obs_test.json");
  const std::string body = ReadFile(path);
  std::remove(path.c_str());

  EXPECT_NE(body.find("\"schema\": \"kwsc-bench\""), std::string::npos);
  EXPECT_NE(body.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(body.find("\"name\": \"obs_test\""), std::string::npos);
  EXPECT_NE(body.find("\"N\": 1024"), std::string::npos);
  EXPECT_NE(body.find("\"label\": \"work vs N\""), std::string::npos);
  EXPECT_NE(body.find("\"queries\": 64"), std::string::npos);
  EXPECT_NE(body.find("\"build_wall_ms\": 12.5"), std::string::npos);
  EXPECT_NE(body.find("\"name\": \"query_latency_ns\""), std::string::npos);
  EXPECT_NE(body.find("\"unit\": \"ns\""), std::string::npos);
  EXPECT_NE(body.find("\"count\": 100"), std::string::npos);
  EXPECT_NE(body.find("\"p50\""), std::string::npos);
  EXPECT_NE(body.find("\"p90\""), std::string::npos);
  EXPECT_NE(body.find("\"p99\""), std::string::npos);
  EXPECT_NE(body.find("\"buckets\""), std::string::npos);
}

TEST(JsonExporter, DeterministicAcrossInsertionOrder) {
  // Same metrics added in different orders -> byte-identical files (ordered
  // maps underneath), which is what makes BENCH_*.json diffable.
  JsonExporter a("order_a");
  a.AddCounter("x", 1);
  a.AddCounter("b", 2);
  a.SetGauge("z", 1.0);
  a.SetGauge("a", 2.0);
  JsonExporter b("order_a");
  b.SetGauge("a", 2.0);
  b.AddCounter("b", 2);
  b.SetGauge("z", 1.0);
  b.AddCounter("x", 1);
  const std::string pa = a.WriteTo("BENCH_order_a1.json");
  const std::string pb = b.WriteTo("BENCH_order_a2.json");
  ASSERT_FALSE(pa.empty());
  ASSERT_FALSE(pb.empty());
  const std::string ca = ReadFile(pa);
  const std::string cb = ReadFile(pb);
  std::remove(pa.c_str());
  std::remove(pb.c_str());
  EXPECT_EQ(ca, cb);
}

TEST(JsonExporter, ExportsQueryStatsCounters) {
  QueryStats stats;
  stats.nodes_visited = 10;
  stats.covered_work = 3;
  stats.crossing_work = 4;
  stats.budget_exhausted = true;
  MetricsRegistry registry;
  AddQueryStatsCounters(stats, "q", &registry);
  EXPECT_EQ(registry.CounterValue("q.nodes_visited"), 10u);
  EXPECT_EQ(registry.CounterValue("q.covered_work"), 3u);
  EXPECT_EQ(registry.CounterValue("q.crossing_work"), 4u);
  EXPECT_EQ(registry.CounterValue("q.budget_exhausted"), 1u);
}

}  // namespace
}  // namespace obs
}  // namespace kwsc
