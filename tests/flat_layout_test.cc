// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Tests for the v2 mmap-native flat layout (DESIGN.md, "On-disk layout v2"):
// every persistable family round-trips through SaveFlat -> LoadFlat with
// byte-for-byte query equivalence and an audit-clean loaded index, every
// slab lands 64-byte aligned, and malformed containers (truncated,
// misaligned, wrong family, wrong dimensionality, wrong corpus) die with the
// specific abort the loader documents. The intersection kernels (scalar
// galloping vs AVX2 blocked) are cross-checked here too, since the flat
// query path runs whichever one kAuto resolves to.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "audit/index_auditor.h"
#include "common/flat_arena.h"
#include "common/random.h"
#include "common/simd_intersect.h"
#include "core/nn_l2.h"
#include "core/nn_linf.h"
#include "core/orp_kw.h"
#include "core/rr_kw.h"
#include "core/sp_kw_box.h"
#include "core/srp_kw.h"
#include "ksi/framework_ksi.h"
#include "test_util.h"
#include "text/inverted_index.h"
#include "workload/generator.h"

namespace kwsc {
namespace {

using testing::ExpectAuditClean;

template <typename Index>
std::shared_ptr<const MmapFile> SaveFlatToFile(const Index& index) {
  std::ostringstream out;
  index.SaveFlat(&out);
  return MmapFile::FromBytes(out.str());
}

template <typename Index>
std::string SaveFlatToBytes(const Index& index) {
  std::ostringstream out;
  index.SaveFlat(&out);
  return out.str();
}

struct Workload {
  Corpus corpus;
  std::vector<Point<2>> pts;
  FrameworkOptions opt;
  Rng rng{42};
};

Workload MakeWorkload(uint32_t n = 600, uint32_t seed = 42) {
  Workload w;
  w.rng = Rng(seed);
  CorpusSpec spec;
  spec.num_objects = n;
  spec.vocab_size = 48;
  w.corpus = GenerateCorpus(spec, &w.rng);
  w.pts = GeneratePoints<2>(n, PointDistribution::kClustered, &w.rng);
  w.opt.k = 2;
  return w;
}

// ---- Arena-level invariants ----

TEST(FlatArena, EverySlabIs64ByteAligned) {
  FlatArenaWriter writer(FlatFamilyTag('T', 'E', 'S', 'T'));
  // Odd sizes on purpose: the padding rule, not luck, must align them.
  const std::vector<uint8_t> tiny(3, 7);
  const std::vector<uint64_t> mid(17, 99);
  const std::vector<uint8_t> one(1, 1);
  const SlabRef a = writer.Slab(std::span<const uint8_t>(tiny));
  const SlabRef b = writer.Slab(std::span<const uint64_t>(mid));
  const SlabRef c = writer.Slab(std::span<const uint8_t>(one));
  struct Root {
    SlabRef a, b, c;
  };
  writer.Root(Root{a, b, c});
  std::ostringstream out;
  writer.WriteTo(&out);
  const std::string bytes = out.str();

  EXPECT_EQ(bytes.size() % kFlatAlignment, 0u);
  for (const SlabRef& ref : {a, b, c}) {
    EXPECT_EQ(ref.offset % kFlatAlignment, 0u);
  }
  const auto file = MmapFile::FromBytes(bytes);
  const FlatArenaReader reader(*file, 0, FlatFamilyTag('T', 'E', 'S', 'T'));
  EXPECT_EQ(reader.total_bytes(), bytes.size());
  const auto mid_back = reader.Slab<uint64_t>(b);
  ASSERT_EQ(mid_back.size(), mid.size());
  EXPECT_EQ(reinterpret_cast<uintptr_t>(mid_back.data()) % kFlatAlignment,
            0u);
  EXPECT_EQ(std::vector<uint64_t>(mid_back.begin(), mid_back.end()), mid);
}

TEST(FlatArena, ContainersConcatenate) {
  // Two containers back to back, the wrapper-over-engine file shape.
  std::ostringstream out;
  {
    FlatArenaWriter writer(FlatFamilyTag('O', 'N', 'E', '1'));
    const std::vector<uint32_t> payload(5, 11);
    struct Root {
      SlabRef payload;
    };
    writer.Root(Root{writer.Slab(std::span<const uint32_t>(payload))});
    writer.WriteTo(&out);
  }
  const uint64_t first_total = out.str().size();
  {
    FlatArenaWriter writer(FlatFamilyTag('T', 'W', 'O', '2'));
    const std::vector<uint32_t> payload(9, 22);
    struct Root {
      SlabRef payload;
    };
    writer.Root(Root{writer.Slab(std::span<const uint32_t>(payload))});
    writer.WriteTo(&out);
  }
  const auto file = MmapFile::FromBytes(out.str());
  const FlatArenaReader first(*file, 0, FlatFamilyTag('O', 'N', 'E', '1'));
  EXPECT_EQ(first.total_bytes(), first_total);
  const FlatArenaReader second(*file, first.total_bytes(),
                               FlatFamilyTag('T', 'W', 'O', '2'));
  EXPECT_EQ(first.total_bytes() + second.total_bytes(), out.str().size());
}

// ---- Per-family round trips: same answers, audit-clean, aligned ----

TEST(FlatLayout, OrpKwRoundTrip) {
  Workload w = MakeWorkload();
  const OrpKwIndex<2> built(w.pts, &w.corpus, w.opt);
  const std::string bytes = SaveFlatToBytes(built);
  EXPECT_EQ(bytes.size() % kFlatAlignment, 0u);
  const auto loaded =
      OrpKwIndex<2>::LoadFlat(MmapFile::FromBytes(bytes), &w.corpus);
  const audit::AuditReport report = audit::AuditIndex(loaded);
  EXPECT_TRUE(report.ok()) << report.ToString();
  for (int trial = 0; trial < 20; ++trial) {
    const auto q = GenerateBoxQuery(std::span<const Point<2>>(w.pts),
                                    trial % 2 == 0 ? 0.02 : 0.3, &w.rng);
    const auto kws =
        PickQueryKeywords(w.corpus, 2, KeywordPick::kCooccurring, &w.rng);
    EXPECT_EQ(loaded.Query(q, kws), built.Query(q, kws));
  }
}

TEST(FlatLayout, OrpKwFlatLoadedResavesV1Identically) {
  // A flat-loaded index must be a full citizen: its v1 Save must equal the
  // pointer-built index's v1 Save byte for byte (the auditor's
  // serialization check depends on this).
  Workload w = MakeWorkload(300, 7);
  const OrpKwIndex<2> built(w.pts, &w.corpus, w.opt);
  const auto loaded =
      OrpKwIndex<2>::LoadFlat(SaveFlatToFile(built), &w.corpus);
  std::ostringstream from_built, from_flat;
  built.Save(&from_built);
  loaded.Save(&from_flat);
  EXPECT_EQ(from_built.str(), from_flat.str());
}

TEST(FlatLayout, SpKwBoxRoundTrip) {
  Workload w = MakeWorkload(500, 11);
  const SpKwBoxIndex<2> built(w.pts, &w.corpus, w.opt);
  const auto loaded =
      SpKwBoxIndex<2>::LoadFlat(SaveFlatToFile(built), &w.corpus);
  const audit::AuditReport report = audit::AuditIndex(loaded);
  EXPECT_TRUE(report.ok()) << report.ToString();
  for (int trial = 0; trial < 15; ++trial) {
    ConvexQuery<2> q;
    q.constraints.push_back(GenerateHalfspaceQuery(
        std::span<const Point<2>>(w.pts), w.rng.UniformDouble(0.2, 0.8),
        &w.rng));
    const auto kws =
        PickQueryKeywords(w.corpus, 2, KeywordPick::kFrequent, &w.rng);
    EXPECT_EQ(loaded.Query(q, kws), built.Query(q, kws));
  }
}

TEST(FlatLayout, SrpKwRoundTrip) {
  Workload w = MakeWorkload(400, 13);
  const SrpKwIndex<2> built(w.pts, &w.corpus, w.opt);
  const auto loaded = SrpKwIndex<2>::LoadFlat(SaveFlatToFile(built), &w.corpus);
  for (int trial = 0; trial < 15; ++trial) {
    const Point<2> c{{w.rng.NextDouble(), w.rng.NextDouble()}};
    const double r_sq = w.rng.UniformDouble(0.01, 0.2);
    const auto kws =
        PickQueryKeywords(w.corpus, 2, KeywordPick::kCooccurring, &w.rng);
    EXPECT_EQ(loaded.Query(c, r_sq, kws), built.Query(c, r_sq, kws));
  }
}

TEST(FlatLayout, RrKwRoundTrip) {
  Rng rng(17);
  CorpusSpec spec;
  spec.num_objects = 400;
  spec.vocab_size = 40;
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto rects = GenerateRects<1>(400, PointDistribution::kUniform, 0.05, &rng);
  FrameworkOptions opt;
  opt.k = 2;
  const RrKwIndex<1> built(rects, &corpus, opt);
  const auto loaded = RrKwIndex<1>::LoadFlat(SaveFlatToFile(built), &corpus);
  const audit::AuditReport report = audit::AuditIndex(loaded);
  EXPECT_TRUE(report.ok()) << report.ToString();
  auto queries = GenerateRects<1>(15, PointDistribution::kUniform, 0.2, &rng);
  for (const Box<1>& q : queries) {
    const auto kws =
        PickQueryKeywords(corpus, 2, KeywordPick::kCooccurring, &rng);
    EXPECT_EQ(loaded.Query(q, kws), built.Query(q, kws));
  }
}

TEST(FlatLayout, LinfNnRoundTrip) {
  Workload w = MakeWorkload(400, 19);
  const LinfNnIndex<2> built(w.pts, &w.corpus, w.opt);
  const auto loaded =
      LinfNnIndex<2>::LoadFlat(SaveFlatToFile(built), &w.corpus);
  for (int trial = 0; trial < 10; ++trial) {
    const Point<2> q{{w.rng.NextDouble(), w.rng.NextDouble()}};
    const auto kws =
        PickQueryKeywords(w.corpus, 2, KeywordPick::kFrequent, &w.rng);
    const uint64_t t = 1 + w.rng.NextBounded(6);
    EXPECT_EQ(loaded.Query(q, t, kws), built.Query(q, t, kws));
  }
}

TEST(FlatLayout, L2NnRoundTrip) {
  Rng rng(23);
  CorpusSpec spec;
  spec.num_objects = 300;
  spec.vocab_size = 32;
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GenerateIntPoints<2>(300, PointDistribution::kUniform, &rng,
                                  /*max_coord=*/10000);
  FrameworkOptions opt;
  opt.k = 2;
  const L2NnIndex<2> built(pts, &corpus, opt);
  const auto loaded = L2NnIndex<2>::LoadFlat(SaveFlatToFile(built), &corpus);
  for (int trial = 0; trial < 10; ++trial) {
    const IntPoint<2> q{{rng.UniformInt(0, 10000), rng.UniformInt(0, 10000)}};
    const auto kws =
        PickQueryKeywords(corpus, 2, KeywordPick::kCooccurring, &rng);
    const uint64_t t = 1 + rng.NextBounded(5);
    EXPECT_EQ(loaded.Query(q, t, kws), built.Query(q, t, kws));
  }
}

TEST(FlatLayout, FrameworkKsiRoundTrip) {
  std::vector<std::vector<int64_t>> sets = {
      {1, 2, 3, 5, 8, 13}, {2, 3, 5, 7, 11}, {3, 5, 9, 13}};
  auto instance = KsiInstance::FromSets(sets);
  FrameworkOptions opt;
  opt.k = 2;
  const FrameworkKsi built(&instance, opt);
  const auto loaded =
      FrameworkKsi::LoadFlat(SaveFlatToFile(built), &instance);
  for (KeywordId a = 0; a < 3; ++a) {
    for (KeywordId b = 0; b < 3; ++b) {
      if (a == b) continue;  // Query keywords must be distinct.
      const std::vector<KeywordId> q = {a, b};
      auto lhs = loaded.Report(q);
      auto rhs = built.Report(q);
      std::sort(lhs.begin(), lhs.end());
      std::sort(rhs.begin(), rhs.end());
      EXPECT_EQ(lhs, rhs);
      EXPECT_EQ(loaded.Empty(q), built.Empty(q));
    }
  }
}

TEST(FlatLayout, EmptyCorpusRoundTrips) {
  Corpus corpus;  // Zero objects: the flat tree slab is legitimately empty.
  std::vector<Point<2>> pts;
  FrameworkOptions opt;
  opt.k = 2;
  const OrpKwIndex<2> built(pts, &corpus, opt);
  const auto loaded =
      OrpKwIndex<2>::LoadFlat(SaveFlatToFile(built), &corpus);
  const std::vector<KeywordId> kws = {0, 1};
  EXPECT_TRUE(loaded.Query(Box<2>::Everything(), kws).empty());
}

// ---- ValidateFlat as a non-aborting checker ----

TEST(FlatLayout, ValidateFlatAcceptsCleanContainer) {
  Workload w = MakeWorkload(200, 31);
  const OrpKwIndex<2> built(w.pts, &w.corpus, w.opt);
  const auto file = SaveFlatToFile(built);
  std::vector<std::string> messages;
  const bool ok = OrpKwIndex<2>::ValidateFlat(
      *file, 0, OrpKwIndex<2>::kFlatFamilyTag,
      [&messages](const std::string& m) { messages.push_back(m); });
  EXPECT_TRUE(ok);
  EXPECT_TRUE(messages.empty());
}

TEST(FlatLayout, ValidateFlatRejectsWrongTagWithoutAborting) {
  Workload w = MakeWorkload(200, 37);
  const OrpKwIndex<2> built(w.pts, &w.corpus, w.opt);
  const auto file = SaveFlatToFile(built);
  std::vector<std::string> messages;
  const bool ok = OrpKwIndex<2>::ValidateFlat(
      *file, 0, SrpKwIndex<2>::kFlatFamilyTag,
      [&messages](const std::string& m) { messages.push_back(m); });
  EXPECT_FALSE(ok);
  ASSERT_FALSE(messages.empty());
  EXPECT_NE(messages.front().find("family tag mismatch"), std::string::npos);
}

// ---- Malformed containers must die with the documented abort ----

using FlatLayoutDeathTest = ::testing::Test;

TEST(FlatLayoutDeathTest, TruncatedFileAborts) {
  Workload w = MakeWorkload(200, 41);
  const OrpKwIndex<2> built(w.pts, &w.corpus, w.opt);
  const std::string bytes = SaveFlatToBytes(built);
  const std::string truncated = bytes.substr(0, bytes.size() / 2);
  EXPECT_DEATH(
      {
        auto loaded = OrpKwIndex<2>::LoadFlat(MmapFile::FromBytes(truncated),
                                              &w.corpus);
      },
      "flat|bounds|implausible");
}

TEST(FlatLayoutDeathTest, HeaderOnlyPrefixAborts) {
  EXPECT_DEATH(
      {
        Corpus corpus;
        auto loaded = OrpKwIndex<2>::LoadFlat(
            MmapFile::FromBytes(std::string(16, '\0')), &corpus);
      },
      "too small");
}

TEST(FlatLayoutDeathTest, MisalignedOffsetAborts) {
  Workload w = MakeWorkload(200, 43);
  const OrpKwIndex<2> built(w.pts, &w.corpus, w.opt);
  const std::string bytes = SaveFlatToBytes(built);
  // A container whose start is not on the alignment quantum is refused
  // before any slab is touched.
  const std::string shifted = std::string(8, '\0') + bytes;
  EXPECT_DEATH(
      {
        auto loaded = OrpKwIndex<2>::LoadFlat(MmapFile::FromBytes(shifted),
                                              &w.corpus, /*offset=*/8);
      },
      "aligned");
}

TEST(FlatLayoutDeathTest, WrongFamilyTagAborts) {
  Workload w = MakeWorkload(200, 47);
  const SpKwBoxIndex<2> built(w.pts, &w.corpus, w.opt);
  const std::string bytes = SaveFlatToBytes(built);
  EXPECT_DEATH(
      {
        auto loaded = OrpKwIndex<2>::LoadFlat(MmapFile::FromBytes(bytes),
                                              &w.corpus);
      },
      "family tag mismatch");
}

TEST(FlatLayoutDeathTest, WrongDimensionalityAborts) {
  Rng rng(53);
  CorpusSpec spec;
  spec.num_objects = 150;
  spec.vocab_size = 24;
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<1>(150, PointDistribution::kUniform, &rng);
  FrameworkOptions opt;
  opt.k = 2;
  const OrpKwIndex<1> built(pts, &corpus, opt);
  const std::string bytes = SaveFlatToBytes(built);
  EXPECT_DEATH(
      {
        auto loaded =
            OrpKwIndex<2>::LoadFlat(MmapFile::FromBytes(bytes), &corpus);
      },
      // The root POD embeds per-dimension slab refs, so a dimension
      // mismatch surfaces as a root-size mismatch before the dim field is
      // ever read; either abort is the documented refusal.
      "root size mismatch|dimensionality mismatch");
}

TEST(FlatLayoutDeathTest, WrongCorpusAborts) {
  Workload w = MakeWorkload(200, 59);
  const OrpKwIndex<2> built(w.pts, &w.corpus, w.opt);
  const std::string bytes = SaveFlatToBytes(built);
  Rng other_rng(60);
  CorpusSpec other_spec;
  other_spec.num_objects = 100;
  other_spec.vocab_size = 24;
  Corpus other = GenerateCorpus(other_spec, &other_rng);
  EXPECT_DEATH(
      {
        auto loaded =
            OrpKwIndex<2>::LoadFlat(MmapFile::FromBytes(bytes), &other);
      },
      "corpus");
}

// ---- Intersection kernels ----

std::vector<ObjectId> MakeSortedList(Rng* rng, size_t n, uint32_t universe) {
  std::vector<ObjectId> v;
  v.reserve(n);
  uint32_t cur = 0;
  for (size_t i = 0; i < n && cur < universe; ++i) {
    cur += 1 + rng->NextBounded(universe / std::max<size_t>(n, 1) + 1);
    if (cur >= universe) break;
    v.push_back(cur);
  }
  return v;
}

TEST(SimdIntersect, KernelsAgreeWithStdSetIntersection) {
  Rng rng(61);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t na = rng.NextBounded(300);
    const size_t nb = rng.NextBounded(300);
    const auto a = MakeSortedList(&rng, na, 4000);
    const auto b = MakeSortedList(&rng, nb, 4000);
    std::vector<ObjectId> expected;
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(expected));
    for (const IntersectKernel kernel :
         {IntersectKernel::kScalar, IntersectKernel::kAvx2,
          IntersectKernel::kAuto}) {
      std::vector<ObjectId> got;
      IntersectSorted(a, b, &got, kernel);
      EXPECT_EQ(got, expected) << "kernel=" << static_cast<int>(kernel)
                               << " |a|=" << a.size() << " |b|=" << b.size();
    }
  }
}

TEST(SimdIntersect, SkewedPairsTakeTheGallopPathCorrectly) {
  Rng rng(67);
  // Extreme imbalance exercises the skew cutoff inside the AVX2 kernel.
  std::vector<ObjectId> big;
  for (uint32_t i = 0; i < 50000; i += 2) big.push_back(i);
  const std::vector<ObjectId> small = {0, 2, 31337, 49998, 49999};
  std::vector<ObjectId> expected;
  std::set_intersection(small.begin(), small.end(), big.begin(), big.end(),
                        std::back_inserter(expected));
  for (const IntersectKernel kernel :
       {IntersectKernel::kScalar, IntersectKernel::kAvx2}) {
    std::vector<ObjectId> got;
    IntersectSorted(small, big, &got, kernel);
    EXPECT_EQ(got, expected);
  }
}

TEST(SimdIntersect, MultiWayMatchesInvertedIndexBaseline) {
  Rng rng(71);
  CorpusSpec spec;
  spec.num_objects = 2000;
  spec.vocab_size = 64;
  Corpus corpus = GenerateCorpus(spec, &rng);
  InvertedIndex scalar_index(corpus);
  scalar_index.set_intersect_kernel(IntersectKernel::kScalar);
  InvertedIndex simd_index(corpus);
  simd_index.set_intersect_kernel(IntersectKernel::kAvx2);
  for (int trial = 0; trial < 50; ++trial) {
    const auto kws =
        PickQueryKeywords(corpus, 2 + trial % 2, KeywordPick::kCooccurring,
                          &rng);
    EXPECT_EQ(scalar_index.Intersect(kws), simd_index.Intersect(kws));
  }
}

}  // namespace
}  // namespace kwsc
