// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Tests for the partition-tree transformation (Appendix D / Theorems 5, 12):
// the box-cell substrate in 2-4 dimensions and the ham-sandwich substrate in
// the plane, against brute force over halfspace-conjunction queries.

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/lc_kw.h"
#include "core/sp_kw_box.h"
#include "core/sp_kw_hs.h"
#include "test_util.h"
#include "workload/generator.h"

namespace kwsc {
namespace {

using testing::BruteBox;
using testing::BruteConvex;
using testing::Sorted;

struct SpParam {
  uint32_t n;
  int k;
  int num_constraints;
  PointDistribution dist;
};

class SpKwBox2DTest : public ::testing::TestWithParam<SpParam> {};

TEST_P(SpKwBox2DTest, MatchesBruteForce) {
  const auto p = GetParam();
  Rng rng(70000 + p.n * 3 + p.k + p.num_constraints);
  CorpusSpec spec;
  spec.num_objects = p.n;
  spec.vocab_size = std::max<uint32_t>(20, p.n / 15);
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<2>(p.n, p.dist, &rng);
  FrameworkOptions opt;
  opt.k = p.k;
  SpKwBoxIndex<2> index(pts, &corpus, opt);
  testing::ExpectAuditClean(index);
  for (int trial = 0; trial < 10; ++trial) {
    ConvexQuery<2> q;
    for (int i = 0; i < p.num_constraints; ++i) {
      q.constraints.push_back(GenerateHalfspaceQuery(
          std::span<const Point<2>>(pts), rng.UniformDouble(0.2, 0.9), &rng));
    }
    auto kws = PickQueryKeywords(
        corpus, p.k,
        trial % 2 == 0 ? KeywordPick::kFrequent : KeywordPick::kCooccurring,
        &rng);
    auto got = index.Query(q, kws);
    auto expected = BruteConvex(std::span<const Point<2>>(pts), corpus, q,
                                kws);
    ASSERT_EQ(Sorted(got), expected) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SpKwBox2DTest,
    ::testing::Values(SpParam{100, 2, 1, PointDistribution::kUniform},
                      SpParam{400, 2, 2, PointDistribution::kClustered},
                      SpParam{400, 3, 3, PointDistribution::kUniform},
                      SpParam{1000, 2, 3, PointDistribution::kDiagonal},
                      SpParam{1000, 3, 1, PointDistribution::kClustered}));

TEST(SpKwBox, ThreeDimensions) {
  Rng rng(71);
  const uint32_t n = 600;
  CorpusSpec spec;
  spec.num_objects = n;
  spec.vocab_size = 40;
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<3>(n, PointDistribution::kUniform, &rng);
  FrameworkOptions opt;
  opt.k = 2;
  SpKwBoxIndex<3> index(pts, &corpus, opt);
  testing::ExpectAuditClean(index);
  for (int trial = 0; trial < 10; ++trial) {
    ConvexQuery<3> q;
    const int s = 1 + static_cast<int>(rng.NextBounded(3));
    for (int i = 0; i < s; ++i) {
      q.constraints.push_back(GenerateHalfspaceQuery(
          std::span<const Point<3>>(pts), rng.UniformDouble(0.3, 0.9), &rng));
    }
    auto kws = PickQueryKeywords(corpus, 2, KeywordPick::kCooccurring, &rng);
    EXPECT_EQ(Sorted(index.Query(q, kws)),
              BruteConvex(std::span<const Point<3>>(pts), corpus, q, kws));
  }
}

class SpKwHsTest : public ::testing::TestWithParam<SpParam> {};

TEST_P(SpKwHsTest, MatchesBruteForce) {
  const auto p = GetParam();
  Rng rng(80000 + p.n * 5 + p.k + p.num_constraints);
  CorpusSpec spec;
  spec.num_objects = p.n;
  spec.vocab_size = std::max<uint32_t>(20, p.n / 15);
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<2>(p.n, p.dist, &rng);
  FrameworkOptions opt;
  opt.k = p.k;
  SpKwHsIndex index(pts, &corpus, opt);
  for (int trial = 0; trial < 10; ++trial) {
    ConvexQuery<2> q;
    for (int i = 0; i < p.num_constraints; ++i) {
      q.constraints.push_back(GenerateHalfspaceQuery(
          std::span<const Point<2>>(pts), rng.UniformDouble(0.2, 0.9), &rng));
    }
    auto kws = PickQueryKeywords(
        corpus, p.k,
        trial % 2 == 0 ? KeywordPick::kFrequent : KeywordPick::kCooccurring,
        &rng);
    auto got = index.Query(q, kws);
    auto expected = BruteConvex(std::span<const Point<2>>(pts), corpus, q,
                                kws);
    ASSERT_EQ(Sorted(got), expected) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SpKwHsTest,
    ::testing::Values(SpParam{100, 2, 1, PointDistribution::kUniform},
                      SpParam{500, 2, 2, PointDistribution::kClustered},
                      SpParam{500, 3, 3, PointDistribution::kUniform},
                      SpParam{1200, 2, 1, PointDistribution::kDiagonal},
                      SpParam{1200, 2, 3, PointDistribution::kUniform}));

TEST(SpKwHs, TriangleQuery) {
  // A 2-simplex (triangle) query: the SP-KW problem statement verbatim.
  Rng rng(73);
  const uint32_t n = 800;
  CorpusSpec spec;
  spec.num_objects = n;
  spec.vocab_size = 50;
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<2>(n, PointDistribution::kUniform, &rng);
  FrameworkOptions opt;
  opt.k = 2;
  SpKwHsIndex index(pts, &corpus, opt);
  // Triangle with CCW vertices (0.2,0.2), (0.9,0.3), (0.5,0.9): interior is
  // to the left of each directed edge, i.e. cross(b-a, p-a) >= 0, which as a
  // halfspace reads (a_y-b_y) x + (b_x-a_x) y <= a_y b_x - a_x b_y... built
  // explicitly below.
  const Point<2> a{{0.2, 0.2}};
  const Point<2> b{{0.9, 0.3}};
  const Point<2> c{{0.5, 0.9}};
  auto edge = [](const Point<2>& u, const Point<2>& v) {
    // Points p with cross(v-u, p-u) >= 0 (left of u->v):
    // -(v_y-u_y) p_x + (v_x-u_x) p_y >= u_y(v_x-u_x) - u_x(v_y-u_y)
    // As <= form: (v_y-u_y) p_x - (v_x-u_x) p_y <= u_x(v_y-u_y)-u_y(v_x-u_x).
    Halfspace<2> h;
    h.coeffs = {v[1] - u[1], -(v[0] - u[0])};
    h.rhs = u[0] * (v[1] - u[1]) - u[1] * (v[0] - u[0]);
    return h;
  };
  ConvexQuery<2> q;
  q.constraints = {edge(a, b), edge(b, c), edge(c, a)};
  // Sanity: the centroid is inside.
  ASSERT_TRUE(q.Satisfies({{(a[0] + b[0] + c[0]) / 3,
                            (a[1] + b[1] + c[1]) / 3}}));
  auto kws = PickQueryKeywords(corpus, 2, KeywordPick::kFrequent, &rng);
  EXPECT_EQ(Sorted(index.Query(q, kws)),
            BruteConvex(std::span<const Point<2>>(pts), corpus, q, kws));
}

TEST(LcKw, BoxQueryViaConvexTranslationMatchesOrpSemantics) {
  // The Theorem-5 remark: ORP-KW can be answered by LC-KW by writing the
  // rectangle as 2d halfspaces.
  Rng rng(79);
  const uint32_t n = 600;
  CorpusSpec spec;
  spec.num_objects = n;
  spec.vocab_size = 40;
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<2>(n, PointDistribution::kUniform, &rng);
  FrameworkOptions opt;
  opt.k = 2;
  LcKwIndex<2> index(pts, &corpus, opt);  // = SpKwHsIndex.
  for (int trial = 0; trial < 10; ++trial) {
    auto box = GenerateBoxQuery(std::span<const Point<2>>(pts), 0.2, &rng);
    auto kws = PickQueryKeywords(corpus, 2, KeywordPick::kCooccurring, &rng);
    auto got = index.Query(BoxToConvexQuery(box), kws);
    EXPECT_EQ(Sorted(got),
              BruteBox(std::span<const Point<2>>(pts), corpus, box, kws));
  }
}

TEST(LcKw, SubstrateSelection) {
  static_assert(std::is_same_v<LcKwIndex<2>, SpKwHsIndex>);
  static_assert(std::is_same_v<LcKwIndex<3>, SpKwBoxIndex<3, double>>);
}

TEST(SpKwBox, TiedCoordinates) {
  // Grid data with heavy coordinate ties exercises the deterministic
  // (coordinate, id) perturbation of Appendix D.4.
  Rng rng(83);
  const uint32_t n = 400;
  std::vector<Document> docs;
  std::vector<Point<2>> pts;
  for (uint32_t i = 0; i < n; ++i) {
    docs.push_back(Document{static_cast<KeywordId>(i % 5),
                            static_cast<KeywordId>(5 + i % 4)});
    pts.push_back({{std::floor(rng.UniformDouble(0, 3)),
                    std::floor(rng.UniformDouble(0, 3))}});
  }
  Corpus corpus(std::move(docs));
  FrameworkOptions opt;
  opt.k = 2;
  SpKwBoxIndex<2> index(pts, &corpus, opt);
  for (int trial = 0; trial < 20; ++trial) {
    ConvexQuery<2> q;
    q.constraints.push_back({{{rng.UniformDouble(-1, 1),
                               rng.UniformDouble(-1, 1)}},
                             rng.UniformDouble(-2, 4)});
    std::vector<KeywordId> kws = {static_cast<KeywordId>(trial % 5),
                                  static_cast<KeywordId>(5 + trial % 4)};
    EXPECT_EQ(Sorted(index.Query(q, kws)),
              BruteConvex(std::span<const Point<2>>(pts), corpus, q, kws));
  }
}

TEST(SpKwBox, ContainsAtLeast) {
  Rng rng(89);
  const uint32_t n = 700;
  CorpusSpec spec;
  spec.num_objects = n;
  spec.vocab_size = 30;
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<2>(n, PointDistribution::kUniform, &rng);
  FrameworkOptions opt;
  opt.k = 2;
  SpKwBoxIndex<2> index(pts, &corpus, opt);
  for (int trial = 0; trial < 10; ++trial) {
    ConvexQuery<2> q;
    q.constraints.push_back(GenerateHalfspaceQuery(
        std::span<const Point<2>>(pts), rng.UniformDouble(0.2, 0.8), &rng));
    auto kws = PickQueryKeywords(corpus, 2, KeywordPick::kFrequent, &rng);
    const size_t truth =
        BruteConvex(std::span<const Point<2>>(pts), corpus, q, kws).size();
    for (uint64_t t : {1, 4, 16}) {
      EXPECT_EQ(index.ContainsAtLeast(q, kws, t), truth >= t);
    }
  }
}

TEST(SpKwHs, StatsAccounting) {
  Rng rng(97);
  const uint32_t n = 500;
  CorpusSpec spec;
  spec.num_objects = n;
  spec.vocab_size = 40;
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<2>(n, PointDistribution::kUniform, &rng);
  FrameworkOptions opt;
  opt.k = 2;
  SpKwHsIndex index(pts, &corpus, opt);
  ConvexQuery<2> q;
  q.constraints.push_back(GenerateHalfspaceQuery(
      std::span<const Point<2>>(pts), 0.5, &rng));
  auto kws = PickQueryKeywords(corpus, 2, KeywordPick::kFrequent, &rng);
  QueryStats stats;
  auto got = index.Query(q, kws, &stats);
  EXPECT_EQ(stats.results, got.size());
  EXPECT_EQ(stats.covered_nodes + stats.crossing_nodes, stats.nodes_visited);
  EXPECT_GT(stats.nodes_visited, 0u);
}

}  // namespace
}  // namespace kwsc
