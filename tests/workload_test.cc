// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Tests for the synthetic workload generators: determinism, shape of the
// generated corpora, and the selectivity contracts of the query makers.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "workload/generator.h"

namespace kwsc {
namespace {

TEST(GenerateCorpus, RespectsSpec) {
  Rng rng(1);
  CorpusSpec spec;
  spec.num_objects = 500;
  spec.vocab_size = 50;
  spec.min_doc_len = 3;
  spec.max_doc_len = 7;
  Corpus corpus = GenerateCorpus(spec, &rng);
  EXPECT_EQ(corpus.num_objects(), 500u);
  EXPECT_LE(corpus.vocab_size(), 50u);
  for (ObjectId e = 0; e < corpus.num_objects(); ++e) {
    EXPECT_GE(corpus.doc(e).size(), 3u);
    EXPECT_LE(corpus.doc(e).size(), 7u);
  }
}

TEST(GenerateCorpus, DeterministicFromSeed) {
  CorpusSpec spec;
  spec.num_objects = 100;
  spec.vocab_size = 30;
  Rng a(7);
  Rng b(7);
  Corpus ca = GenerateCorpus(spec, &a);
  Corpus cb = GenerateCorpus(spec, &b);
  ASSERT_EQ(ca.num_objects(), cb.num_objects());
  for (ObjectId e = 0; e < ca.num_objects(); ++e) {
    EXPECT_EQ(ca.doc(e), cb.doc(e));
  }
}

TEST(GenerateCorpus, ZipfSkewConcentratesPopularKeywords) {
  Rng rng(11);
  CorpusSpec spec;
  spec.num_objects = 2000;
  spec.vocab_size = 100;
  spec.zipf_skew = 1.2;
  Corpus corpus = GenerateCorpus(spec, &rng);
  std::vector<int> counts(100, 0);
  for (ObjectId e = 0; e < corpus.num_objects(); ++e) {
    for (KeywordId w : corpus.doc(e)) ++counts[w];
  }
  // Keyword 0 must occur far more often than keyword 50.
  EXPECT_GT(counts[0], 4 * std::max(counts[50], 1));
}

TEST(PickQueryKeywords, DistinctAndWithinVocab) {
  Rng rng(13);
  CorpusSpec spec;
  spec.num_objects = 300;
  spec.vocab_size = 40;
  Corpus corpus = GenerateCorpus(spec, &rng);
  for (auto pick : {KeywordPick::kFrequent, KeywordPick::kUniform,
                    KeywordPick::kCooccurring}) {
    for (int trial = 0; trial < 20; ++trial) {
      auto kws = PickQueryKeywords(corpus, 3, pick, &rng);
      ASSERT_EQ(kws.size(), 3u);
      std::sort(kws.begin(), kws.end());
      EXPECT_EQ(std::unique(kws.begin(), kws.end()), kws.end());
      EXPECT_LT(kws.back(), corpus.vocab_size());
    }
  }
}

TEST(PickQueryKeywords, CooccurringGuaranteesWitness) {
  Rng rng(17);
  CorpusSpec spec;
  spec.num_objects = 200;
  spec.vocab_size = 60;
  spec.min_doc_len = 3;
  Corpus corpus = GenerateCorpus(spec, &rng);
  for (int trial = 0; trial < 20; ++trial) {
    auto kws = PickQueryKeywords(corpus, 3, KeywordPick::kCooccurring, &rng);
    bool witness = false;
    for (ObjectId e = 0; e < corpus.num_objects() && !witness; ++e) {
      witness = corpus.ContainsAll(e, kws);
    }
    EXPECT_TRUE(witness) << "trial " << trial;
  }
}

TEST(GeneratePoints, StaysInRange) {
  Rng rng(19);
  for (auto dist : {PointDistribution::kUniform, PointDistribution::kClustered,
                    PointDistribution::kDiagonal}) {
    auto pts = GeneratePoints<3>(500, dist, &rng, -2.0, 5.0);
    for (const auto& p : pts) {
      for (int dim = 0; dim < 3; ++dim) {
        EXPECT_GE(p[dim], -2.0);
        EXPECT_LE(p[dim], 5.0);
      }
    }
  }
}

TEST(GenerateIntPoints, BoundedByMaxCoord) {
  Rng rng(23);
  auto pts =
      GenerateIntPoints<2>(300, PointDistribution::kUniform, &rng, 1000);
  for (const auto& p : pts) {
    for (int dim = 0; dim < 2; ++dim) {
      EXPECT_GE(p[dim], 0);
      EXPECT_LE(p[dim], 1000);
    }
  }
}

TEST(GenerateBoxQuery, SelectivityRoughlyHonored) {
  Rng rng(29);
  auto pts = GeneratePoints<2>(5000, PointDistribution::kUniform, &rng);
  double total_fraction = 0;
  const int trials = 30;
  for (int trial = 0; trial < trials; ++trial) {
    auto q = GenerateBoxQuery(std::span<const Point<2>>(pts), 0.1, &rng);
    size_t inside = 0;
    for (const auto& p : pts) inside += q.Contains(p);
    total_fraction += static_cast<double>(inside) / static_cast<double>(pts.size());
  }
  // Boxes centered at data points near the boundary are clipped, so the
  // average lands a little under the target.
  EXPECT_NEAR(total_fraction / trials, 0.1, 0.05);
}

TEST(GenerateHalfspaceQuery, SelectivityExactQuantile) {
  Rng rng(31);
  auto pts = GeneratePoints<2>(2000, PointDistribution::kClustered, &rng);
  for (double sel : {0.1, 0.5, 0.9}) {
    auto h = GenerateHalfspaceQuery(std::span<const Point<2>>(pts), sel, &rng);
    size_t inside = 0;
    for (const auto& p : pts) inside += h.Satisfies(p);
    EXPECT_NEAR(static_cast<double>(inside) / static_cast<double>(pts.size()), sel, 0.02);
  }
}

TEST(GenerateBallQuery, SelectivityExactQuantile) {
  Rng rng(37);
  auto pts = GeneratePoints<2>(2000, PointDistribution::kUniform, &rng);
  for (double sel : {0.05, 0.3}) {
    auto [center, radius_sq] =
        GenerateBallQuery(std::span<const Point<2>>(pts), sel, &rng);
    size_t inside = 0;
    for (const auto& p : pts) {
      inside += L2DistanceSquared(p, center) <= radius_sq;
    }
    EXPECT_NEAR(static_cast<double>(inside) / static_cast<double>(pts.size()), sel, 0.02);
  }
}

TEST(GenerateRects, ValidRectangles) {
  Rng rng(41);
  auto rects = GenerateRects<2>(300, PointDistribution::kUniform, 0.05, &rng);
  for (const auto& r : rects) EXPECT_TRUE(r.Valid());
}

TEST(GenerateKsiSets, SizesAndDistinctness) {
  Rng rng(43);
  auto sets = GenerateKsiSets(10, 1000, 50, &rng);
  ASSERT_EQ(sets.size(), 10u);
  for (const auto& s : sets) {
    EXPECT_GE(s.size(), 1u);
    std::vector<int64_t> sorted(s);
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
  }
  // Zipf sizing: the first set is the biggest.
  EXPECT_GE(sets[0].size(), sets[9].size());
}

}  // namespace
}  // namespace kwsc
