// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Tests for the two naive baselines of Section 1 — they must be *correct*
// (they are the reference competitors in every benchmark) and their
// candidate accounting must reflect their respective blow-ups.

#include <gtest/gtest.h>

#include "baseline/keywords_only.h"
#include "baseline/structured_only.h"
#include "common/random.h"
#include "test_util.h"
#include "workload/generator.h"

namespace kwsc {
namespace {

using testing::BruteBall;
using testing::BruteBox;
using testing::BruteConvex;
using testing::BruteNearest;
using testing::BruteRects;
using testing::DistanceProfile;
using testing::Sorted;

class BaselineFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(31337);
    CorpusSpec spec;
    spec.num_objects = 800;
    spec.vocab_size = 60;
    corpus_ = GenerateCorpus(spec, &rng);
    pts_ = GeneratePoints<2>(800, PointDistribution::kClustered, &rng);
    rng_ = Rng(424242);
  }

  std::span<const Point<2>> pts() const { return pts_; }

  Corpus corpus_;
  std::vector<Point<2>> pts_;
  Rng rng_ = Rng(0);
};

TEST_F(BaselineFixture, StructuredOnlyBoxMatchesBruteForce) {
  StructuredOnlyBaseline<2> baseline(pts(), &corpus_);
  for (int trial = 0; trial < 10; ++trial) {
    auto q = GenerateBoxQuery(pts(), 0.1, &rng_);
    auto kws = PickQueryKeywords(corpus_, 2, KeywordPick::kCooccurring, &rng_);
    BaselineStats stats;
    auto got = baseline.QueryBox(q, kws, &stats);
    auto expected = BruteBox(pts(), corpus_, q, kws);
    EXPECT_EQ(Sorted(got), expected);
    EXPECT_EQ(stats.results, expected.size());
    // Structured-only examines every point in the box regardless of
    // keywords.
    EXPECT_GE(stats.candidates, expected.size());
  }
}

TEST_F(BaselineFixture, KeywordsOnlyBoxMatchesBruteForce) {
  KeywordsOnlyBaseline<2> baseline(pts(), &corpus_);
  for (int trial = 0; trial < 10; ++trial) {
    auto q = GenerateBoxQuery(pts(), 0.1, &rng_);
    auto kws = PickQueryKeywords(corpus_, 2, KeywordPick::kFrequent, &rng_);
    auto got = baseline.QueryBox(q, kws);
    EXPECT_EQ(Sorted(got), BruteBox(pts(), corpus_, q, kws));
  }
}

TEST_F(BaselineFixture, ConvexQueriesMatch) {
  StructuredOnlyBaseline<2> structured(pts(), &corpus_);
  KeywordsOnlyBaseline<2> keywords(pts(), &corpus_);
  for (int trial = 0; trial < 10; ++trial) {
    ConvexQuery<2> q;
    q.constraints.push_back(
        GenerateHalfspaceQuery(pts(), rng_.UniformDouble(0.2, 0.8), &rng_));
    q.constraints.push_back(
        GenerateHalfspaceQuery(pts(), rng_.UniformDouble(0.2, 0.8), &rng_));
    auto kws = PickQueryKeywords(corpus_, 2, KeywordPick::kCooccurring, &rng_);
    auto expected = BruteConvex(pts(), corpus_, q, kws);
    EXPECT_EQ(Sorted(structured.QueryConvex(q, kws)), expected);
    EXPECT_EQ(Sorted(keywords.QueryConvex(q, kws)), expected);
  }
}

TEST_F(BaselineFixture, BallQueriesMatch) {
  StructuredOnlyBaseline<2> structured(pts(), &corpus_);
  KeywordsOnlyBaseline<2> keywords(pts(), &corpus_);
  for (int trial = 0; trial < 10; ++trial) {
    auto [center, radius_sq] = GenerateBallQuery(pts(), 0.1, &rng_);
    auto kws = PickQueryKeywords(corpus_, 2, KeywordPick::kUniform, &rng_);
    auto expected = BruteBall(pts(), corpus_, center, radius_sq, kws);
    EXPECT_EQ(Sorted(structured.QueryBall(center, radius_sq, kws)), expected);
    EXPECT_EQ(Sorted(keywords.QueryBall(center, radius_sq, kws)), expected);
  }
}

TEST_F(BaselineFixture, NearestQueriesMatchByDistance) {
  StructuredOnlyBaseline<2> structured(pts(), &corpus_);
  KeywordsOnlyBaseline<2> keywords(pts(), &corpus_);
  auto linf = [](const Point<2>& a, const Point<2>& b) {
    return LInfDistance(a, b);
  };
  for (int trial = 0; trial < 10; ++trial) {
    Point<2> q{{rng_.NextDouble(), rng_.NextDouble()}};
    auto kws = PickQueryKeywords(corpus_, 2, KeywordPick::kCooccurring, &rng_);
    const uint64_t t = 1 + rng_.NextBounded(8);
    auto expected = BruteNearest(pts(), corpus_, q, t, kws, linf);
    auto got_s = structured.QueryNearestLinf(q, t, kws);
    auto got_k = keywords.QueryNearestLinf(q, t, kws);
    ASSERT_EQ(got_s.size(), expected.size());
    ASSERT_EQ(got_k.size(), expected.size());
    EXPECT_EQ(DistanceProfile(pts(), q, got_s, linf),
              DistanceProfile(pts(), q, expected, linf));
    EXPECT_EQ(DistanceProfile(pts(), q, got_k, linf),
              DistanceProfile(pts(), q, expected, linf));
  }
}

TEST_F(BaselineFixture, KeywordsOnlyCandidateBlowUpIsVisible) {
  // The pathology of Section 1: frequent keywords + tiny box = huge
  // candidate set, tiny result.
  KeywordsOnlyBaseline<2> baseline(pts(), &corpus_);
  auto kws = PickQueryKeywords(corpus_, 2, KeywordPick::kFrequent, &rng_,
                               /*frequent_pool=*/3);
  Box<2> tiny{{{0.5, 0.5}}, {{0.5001, 0.5001}}};
  BaselineStats stats;
  auto got = baseline.QueryBox(tiny, kws, &stats);
  EXPECT_GT(stats.candidates, 20u);
  EXPECT_LE(got.size(), 1u);
}

TEST(KeywordsOnlyRect, MatchesBruteForce) {
  Rng rng(999);
  CorpusSpec spec;
  spec.num_objects = 400;
  spec.vocab_size = 40;
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto rects = GenerateRects<2>(400, PointDistribution::kUniform, 0.05, &rng);
  KeywordsOnlyRectBaseline<2> baseline(rects, &corpus);
  for (int trial = 0; trial < 10; ++trial) {
    Box<2> q;
    for (int dim = 0; dim < 2; ++dim) {
      const double c = rng.NextDouble();
      q.lo[dim] = c - 0.1;
      q.hi[dim] = c + 0.1;
    }
    auto kws = PickQueryKeywords(corpus, 2, KeywordPick::kCooccurring, &rng);
    EXPECT_EQ(Sorted(baseline.Query(q, kws)),
              BruteRects(std::span<const Box<2>>(rects), corpus, q, kws));
  }
}

}  // namespace
}  // namespace kwsc
