// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Tests for the simplified IR-tree baseline: correctness against brute
// force, structural sanity of the STR bulk load, and the keyword-summary
// pruning behaviour the related-work comparison relies on.

#include <gtest/gtest.h>

#include "baseline/ir_tree.h"
#include "common/random.h"
#include "test_util.h"
#include "workload/generator.h"

namespace kwsc {
namespace {

using testing::BruteBox;
using testing::Sorted;

struct IrParam {
  uint32_t n;
  int leaf_capacity;
  PointDistribution dist;
  double selectivity;
};

class IrTreeTest : public ::testing::TestWithParam<IrParam> {};

TEST_P(IrTreeTest, MatchesBruteForce) {
  const auto p = GetParam();
  Rng rng(99000 + p.n + p.leaf_capacity);
  CorpusSpec spec;
  spec.num_objects = p.n;
  spec.vocab_size = std::max<uint32_t>(20, p.n / 15);
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<2>(p.n, p.dist, &rng);
  IrTree<2> tree(pts, &corpus, p.leaf_capacity);
  for (int trial = 0; trial < 10; ++trial) {
    auto q = GenerateBoxQuery(std::span<const Point<2>>(pts), p.selectivity,
                              &rng);
    auto kws = PickQueryKeywords(
        corpus, 2,
        trial % 2 == 0 ? KeywordPick::kFrequent : KeywordPick::kCooccurring,
        &rng);
    EXPECT_EQ(Sorted(tree.Query(q, kws)),
              BruteBox(std::span<const Point<2>>(pts), corpus, q, kws));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IrTreeTest,
    ::testing::Values(IrParam{60, 4, PointDistribution::kUniform, 0.3},
                      IrParam{400, 8, PointDistribution::kClustered, 0.1},
                      IrParam{400, 32, PointDistribution::kUniform, 0.05},
                      IrParam{1500, 32, PointDistribution::kDiagonal, 0.02},
                      IrParam{1500, 64, PointDistribution::kClustered, 0.2}));

TEST(IrTree, ThreeDimensional) {
  Rng rng(991);
  CorpusSpec spec;
  spec.num_objects = 600;
  spec.vocab_size = 40;
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<3>(600, PointDistribution::kUniform, &rng);
  IrTree<3> tree(pts, &corpus);
  for (int trial = 0; trial < 8; ++trial) {
    auto q = GenerateBoxQuery(std::span<const Point<3>>(pts), 0.1, &rng);
    auto kws = PickQueryKeywords(corpus, 2, KeywordPick::kCooccurring, &rng);
    EXPECT_EQ(Sorted(tree.Query(q, kws)),
              BruteBox(std::span<const Point<3>>(pts), corpus, q, kws));
  }
}

TEST(IrTree, RareKeywordPrunesWithoutGeometry) {
  // A keyword appearing in exactly one object: the summary pruning should
  // route the search to one leaf-sized candidate set even for the whole
  // space.
  Rng rng(992);
  const uint32_t n = 4000;
  std::vector<Document> docs;
  std::vector<Point<2>> pts;
  for (uint32_t i = 0; i < n; ++i) {
    std::vector<KeywordId> kws = {static_cast<KeywordId>(i % 8),
                                  static_cast<KeywordId>(8 + i % 4)};
    if (i == 1234) kws.push_back(99);  // The rare keyword.
    docs.emplace_back(std::move(kws));
    pts.push_back({{rng.NextDouble(), rng.NextDouble()}});
  }
  Corpus corpus(std::move(docs));
  IrTree<2> tree(pts, &corpus);
  std::vector<KeywordId> kws = {99, static_cast<KeywordId>(1234 % 8)};
  BaselineStats stats;
  auto got = tree.Query(Box<2>::Everything(), kws, &stats);
  EXPECT_EQ(got, (std::vector<ObjectId>{1234}));
  EXPECT_LE(stats.candidates, 64u);  // One or two leaves, not the dataset.
}

TEST(IrTree, FrequentKeywordsDegenerateToRegionScan) {
  // The flip side (the paper's point): keywords in every node's summary
  // cannot prune, so the whole query region is scanned even for an empty
  // answer.
  Rng rng(993);
  const uint32_t n = 4000;
  std::vector<Document> docs;
  std::vector<Point<2>> pts;
  for (uint32_t i = 0; i < n; ++i) {
    // Keywords 0 and 1 are everywhere but never together.
    docs.push_back(Document{static_cast<KeywordId>(i % 2),
                            static_cast<KeywordId>(2 + i % 5)});
    pts.push_back({{rng.NextDouble(), rng.NextDouble()}});
  }
  Corpus corpus(std::move(docs));
  IrTree<2> tree(pts, &corpus);
  std::vector<KeywordId> kws = {0, 1};  // Provably empty everywhere.
  BaselineStats stats;
  auto got = tree.Query(Box<2>::Everything(), kws, &stats);
  EXPECT_TRUE(got.empty());
  EXPECT_GE(stats.candidates, n / 2);  // No pruning possible.
}

TEST(IrTree, HandlesEmptyAndSingle) {
  Corpus corpus({Document{0, 1}});
  std::vector<Point<2>> pts = {{{0.5, 0.5}}};
  IrTree<2> tree(pts, &corpus);
  std::vector<KeywordId> kws = {0, 1};
  EXPECT_EQ(tree.Query(Box<2>::Everything(), kws).size(), 1u);
  EXPECT_TRUE(tree.Query({{{0.6, 0}}, {{1, 1}}}, kws).empty());

  Corpus empty_corpus;
  IrTree<2> empty(std::span<const Point<2>>(), &empty_corpus, 4);
  EXPECT_TRUE(empty.Query(Box<2>::Everything(), kws).empty());
}

}  // namespace
}  // namespace kwsc
