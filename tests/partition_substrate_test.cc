// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Tests for the partition substrates: f-balanced cuts (Section 4) and
// ham-sandwich cuts (Appendix D's 2-D partition tree stand-in).

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/random.h"
#include "core/balanced_cut.h"
#include "parttree/ham_sandwich.h"
#include "text/corpus.h"
#include "workload/generator.h"

namespace kwsc {
namespace {

TEST(FanoutForLevel, MatchesEquationTen) {
  // f_u = 2 * 2^(k^level).
  EXPECT_EQ(FanoutForLevel(2, 0, 1 << 30), 4u);        // 2 * 2^1.
  EXPECT_EQ(FanoutForLevel(2, 1, 1 << 30), 8u);        // 2 * 2^2.
  EXPECT_EQ(FanoutForLevel(2, 2, 1 << 30), 32u);       // 2 * 2^4.
  EXPECT_EQ(FanoutForLevel(2, 3, 1 << 30), 512u);      // 2 * 2^8.
  EXPECT_EQ(FanoutForLevel(3, 0, 1 << 30), 4u);        // 2 * 2^1.
  EXPECT_EQ(FanoutForLevel(3, 1, 1 << 30), 16u);       // 2 * 2^3.
  EXPECT_EQ(FanoutForLevel(3, 2, 1 << 30), 1u << 10);  // 2 * 2^9.
}

TEST(FanoutForLevel, SaturatesAtMaxFanout) {
  EXPECT_EQ(FanoutForLevel(2, 10, 100), 100u);
  EXPECT_EQ(FanoutForLevel(2, 30, 7), 7u);
  EXPECT_EQ(FanoutForLevel(2, 30, 1), 2u);  // Floor of 2.
}

class BalancedCutTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BalancedCutTest, SatisfiesAllInvariants) {
  const uint64_t fanout = GetParam();
  Rng rng(fanout * 31);
  CorpusSpec spec;
  spec.num_objects = 300;
  spec.vocab_size = 40;
  spec.min_doc_len = 1;
  spec.max_doc_len = 9;
  Corpus corpus = GenerateCorpus(spec, &rng);
  std::vector<ObjectId> sorted(corpus.num_objects());
  std::iota(sorted.begin(), sorted.end(), 0);

  const BalancedCut cut = ComputeBalancedCut(sorted, corpus, fanout);
  uint64_t total = corpus.total_weight();

  // Groups and separators are disjoint and cover the input.
  size_t covered = cut.separators.size();
  for (const auto& g : cut.groups) covered += g.end - g.begin;
  EXPECT_EQ(covered, sorted.size());
  EXPECT_LE(cut.groups.size(), fanout);
  EXPECT_LE(cut.separators.size(), fanout - 1);

  // Groups are contiguous and ordered; weights obey the quota.
  uint32_t cursor = 0;
  for (const auto& g : cut.groups) {
    EXPECT_GE(g.begin, cursor);
    cursor = g.end;
    uint64_t w = 0;
    for (uint32_t i = g.begin; i < g.end; ++i) {
      w += corpus.doc(sorted[i]).size();
    }
    EXPECT_LE(w, total / fanout) << "group weight quota violated";
  }
}

INSTANTIATE_TEST_SUITE_P(FanoutSweep, BalancedCutTest,
                         ::testing::Values(2, 3, 4, 8, 32, 128, 500));

TEST(BalancedCut, SingleHeavyObjectBecomesSeparator) {
  // One object heavier than the quota cannot fit in any group.
  Corpus corpus({Document{0, 1, 2, 3, 4, 5, 6, 7}, Document{8}, Document{9}});
  std::vector<ObjectId> sorted = {0, 1, 2};
  const BalancedCut cut = ComputeBalancedCut(sorted, corpus, 2);
  // Quota = 10/2 = 5 < 8, so object 0 is promoted to separator.
  ASSERT_FALSE(cut.separators.empty());
  EXPECT_EQ(cut.separators[0], 0u);
}

TEST(HamSandwich, Line1BisectsWeight) {
  Rng rng(71);
  auto pts = GeneratePoints<2>(501, PointDistribution::kUniform, &rng);
  std::vector<uint64_t> weights(pts.size());
  for (auto& w : weights) w = 1 + rng.NextBounded(8);
  const auto cut =
      FindHamSandwichCut(std::span<const Point<2>>(pts), weights);
  uint64_t left = 0;
  uint64_t right = 0;
  uint64_t total = 0;
  for (size_t i = 0; i < pts.size(); ++i) {
    total += weights[i];
    const double f = cut.line1.Eval(pts[i]) - cut.line1.rhs;
    if (f < 0) left += weights[i];
    if (f > 0) right += weights[i];
  }
  EXPECT_LE(left, total / 2 + 1);
  EXPECT_LE(right, total / 2 + 1);
}

TEST(HamSandwich, Line2ApproximatelyBisectsBothSides) {
  Rng rng(73);
  for (int trial = 0; trial < 8; ++trial) {
    auto dist = trial % 2 == 0 ? PointDistribution::kUniform
                               : PointDistribution::kClustered;
    auto pts = GeneratePoints<2>(800, dist, &rng);
    std::vector<uint64_t> weights(pts.size(), 1);
    const auto cut =
        FindHamSandwichCut(std::span<const Point<2>>(pts), weights);
    // Quadrant occupancy: every quadrant should hold at most ~30% of the
    // points (exact ham-sandwich gives 25%; the numeric search is
    // approximate).
    std::array<int, 4> quadrant = {0, 0, 0, 0};
    int on_lines = 0;
    for (const auto& p : pts) {
      const double f1 = cut.line1.Eval(p) - cut.line1.rhs;
      const double f2 = cut.line2.Eval(p) - cut.line2.rhs;
      if (std::fabs(f1) < 1e-9 || std::fabs(f2) < 1e-9) {
        ++on_lines;
        continue;
      }
      ++quadrant[(f1 > 0 ? 2 : 0) + (f2 > 0 ? 1 : 0)];
    }
    for (int c = 0; c < 4; ++c) {
      EXPECT_LE(quadrant[c], static_cast<int>(0.35 * static_cast<double>(pts.size())))
          << "trial " << trial << " quadrant " << c;
    }
  }
}

TEST(HamSandwich, DegenerateAllSameX) {
  std::vector<Point<2>> pts;
  for (int i = 0; i < 20; ++i) pts.push_back({{1.0, static_cast<double>(i)}});
  std::vector<uint64_t> weights(pts.size(), 1);
  const auto cut =
      FindHamSandwichCut(std::span<const Point<2>>(pts), weights);
  // Line 1 passes through all points; line 2 must be the horizontal median.
  EXPECT_DOUBLE_EQ(cut.line1.rhs, 1.0);
  int below = 0;
  for (const auto& p : pts) {
    if (cut.line2.Eval(p) < cut.line2.rhs) ++below;
  }
  EXPECT_LE(below, 10);
}

TEST(HamSandwich, AnyLineMissesOneQuadrantCell) {
  // The crossing-bound property: for random query lines, at least one of the
  // four cells formed by the two cut lines is untouched. This is geometric
  // (two lines partition the plane into 4 wedges; a third line meets at most
  // 3), so it must hold for every trial.
  Rng rng(79);
  auto pts = GeneratePoints<2>(400, PointDistribution::kUniform, &rng);
  std::vector<uint64_t> weights(pts.size(), 1);
  const auto cut =
      FindHamSandwichCut(std::span<const Point<2>>(pts), weights);
  for (int trial = 0; trial < 100; ++trial) {
    const auto query = GenerateHalfspaceQuery(std::span<const Point<2>>(pts),
                                              rng.NextDouble(), &rng);
    // Sample the query's boundary line densely and record which cells it
    // touches within the data square.
    std::array<bool, 4> touched = {false, false, false, false};
    // Parametrize the line a.x = rhs: direction (-a_y, a_x).
    const double dx = -query.coeffs[1];
    const double dy = query.coeffs[0];
    const double norm = std::hypot(query.coeffs[0], query.coeffs[1]);
    const double px = query.coeffs[0] / norm * query.rhs / norm;
    const double py = query.coeffs[1] / norm * query.rhs / norm;
    for (int s = -500; s <= 500; ++s) {
      const Point<2> p{{px + dx * s * 0.004, py + dy * s * 0.004}};
      const double f1 = cut.line1.Eval(p) - cut.line1.rhs;
      const double f2 = cut.line2.Eval(p) - cut.line2.rhs;
      if (std::fabs(f1) < 1e-12 || std::fabs(f2) < 1e-12) continue;
      touched[(f1 > 0 ? 2 : 0) + (f2 > 0 ? 1 : 0)] = true;
    }
    const int cells = touched[0] + touched[1] + touched[2] + touched[3];
    EXPECT_LE(cells, 3) << "a line crossed all four cells";
  }
}

}  // namespace
}  // namespace kwsc
