// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Writes the golden format files (tests/golden_util.h) into the directory
// given as argv[1]. Run once per deliberate format change, commit the
// output together with the version bump and the regenerated FORMATS.lock:
//
//   cmake --build build --target make_golden
//   build/tests/make_golden tests/golden

#include <cstdio>
#include <fstream>
#include <string>

#include "golden_util.h"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: make_golden <output-dir>\n");
    return 2;
  }
  const std::string dir = argv[1];
  for (const kwsc::golden::GoldenFile& file : kwsc::golden::RenderAll()) {
    const std::string path = dir + "/" + file.name;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(file.bytes.data(),
              static_cast<std::streamsize>(file.bytes.size()));
    if (!out.good()) {
      std::fprintf(stderr, "make_golden: cannot write %s\n", path.c_str());
      return 1;
    }
    std::printf("make_golden: wrote %s (%zu bytes)\n", path.c_str(),
                file.bytes.size());
  }
  return 0;
}
