// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Seeded thread-capture violations: lambdas submitted to a TaskGroup that
// capture by reference and write the captured object with no lock. The last
// two tasks are the sanctioned idioms — elementwise writes into pre-sized
// slots, and a MutexLock-guarded update — and must stay clean.
//
// Expected findings: exactly 3 x thread-capture (total, rows, sum).

#include <vector>

#include "common/mutex.h"
#include "common/thread_pool.h"

namespace kwsc {

void Driver(ThreadPool* pool) {
  int total = 0;
  std::vector<int> rows;
  int sum = 0;
  std::vector<int> slots(4);
  int guarded = 0;
  Mutex mu;
  TaskGroup group(pool);
  group.Run([&total] { total += 1; });
  group.Run([&rows] { rows.push_back(1); });
  group.Run([&] { sum = sum + 1; });
  group.Run([&slots] { slots[0] = 1; });
  group.Run([&guarded, &mu] {
    MutexLock lock(&mu);
    guarded += 1;
  });
  group.Wait();
}

}  // namespace kwsc
