// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Seeded flat-retain violations: members that pin a view into a mapped
// region past the scope that derived it — a retained FlatArenaReader and a
// retained std::byte pointer. Owning the MmapFile itself (shared_ptr, as
// every flat-loaded index does) is the sanctioned pattern and stays clean.
//
// Expected findings: exactly 2 x flat-retain (reader_, base_).

#include <memory>

#include "common/flat_arena.h"

namespace kwsc {

class LeakyView {
 private:
  FlatArenaReader reader_;
  const std::byte* base_ = nullptr;
  std::shared_ptr<const MmapFile> mmap_;
};

}  // namespace kwsc
