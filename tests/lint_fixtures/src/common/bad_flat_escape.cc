// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Seeded flat-escape violations: reinterpreting mapped-file bytes and doing
// hand pointer arithmetic on a std::byte view, both outside the
// FlatArenaReader accessors that own those operations.
//
// Expected findings: exactly 2 x flat-escape (the cast in PeekHeader, the
// arithmetic in SkipHeader).

#include <cstdint>

#include "common/flat_arena.h"

namespace kwsc {

uint64_t PeekHeader(const MmapFile& file) {
  return *reinterpret_cast<const uint64_t*>(file.data());
}

const std::byte* SkipHeader(const std::byte* base) {
  return base + 16;
}

}  // namespace kwsc
