// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Seeded epoch-nonapi-access violations: the batch-dynamic level set is
// published through EpochPtr, and every access must go through the
// Acquire/Publish/epoch API. Seeds: a direct poke at the guarded pointer, a
// non-API method call, and an in-place mutation of an acquired (immutable)
// snapshot. The API-conformant publisher/reader pair is the control, as is
// mutating a fresh same-named local before it is published (the sanctioned
// build-then-Publish pattern).
//
// Expected findings: exactly 3 x epoch-nonapi-access.

#include <memory>
#include <utility>
#include <vector>

#include "common/epoch.h"

namespace kwsc {

struct LevelSet {
  std::vector<int> levels;
};

class EpochDodger {
 public:
  void PublishThroughApi() {
    // Control: building a fresh snapshot off to the side and mutating it
    // before Publish is the protocol, not a violation.
    auto snap = std::make_shared<LevelSet>();
    snap->levels.push_back(1);
    levels_.Publish(std::move(snap));
  }

  int ReadThroughApi() const {
    const std::shared_ptr<const LevelSet> snap = levels_.Acquire();
    if (snap == nullptr) return 0;
    // Control: reads through an acquired snapshot are the whole point.
    return static_cast<int>(snap->levels.size());
  }

  void PokePastTheApi(std::shared_ptr<const LevelSet> next) {
    levels_.current_ = std::move(next);  // Violation: direct pointer poke.
  }

  void CallOffApiMethod() {
    levels_.Reset();  // Violation: not Acquire/Publish/epoch.
  }

  void MutateAcquiredSnapshot() {
    auto snap = levels_.Acquire();
    snap->levels.push_back(7);  // Violation: published state is immutable.
  }

 private:
  EpochPtr<LevelSet> levels_;
};

}  // namespace kwsc
