// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Seeded concurrency-raw-thread violations: a raw std::thread, a detach()
// that abandons it, and a pthread call — all outside common/thread_pool.*,
// the one file allowed to spell raw threads.
//
// Expected findings: exactly 3 x concurrency-raw-thread.

#include <thread>

namespace kwsc {

void SpawnUnmanaged() {
  std::thread worker([] {});
  worker.detach();
  pthread_exit(nullptr);
}

}  // namespace kwsc
