// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Seeded concurrency-unguarded-mutex violation: a Mutex member no
// thread-safety annotation ever names. AnnotatedCounter shows the two ways
// a mutex earns its keep — guarding a field (KWSC_GUARDED_BY) and appearing
// in a method contract (KWSC_EXCLUDES) — and must stay clean.
//
// Expected findings: exactly 1 x concurrency-unguarded-mutex (mu_).

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace kwsc {

class UnguardedCounter {
 public:
  void Bump();

 private:
  Mutex mu_;
  int count_ = 0;
};

class AnnotatedCounter {
 public:
  void Bump() KWSC_EXCLUDES(mu2_);

 private:
  Mutex mu2_;
  int count_ KWSC_GUARDED_BY(mu2_) = 0;
};

}  // namespace kwsc
