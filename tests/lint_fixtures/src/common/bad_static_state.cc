// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Seeded concurrency-static-state violations: mutable static declarations
// in core/common scope that are none of const/constexpr, std::atomic,
// thread_local, or Mutex-guarded. The safe spellings below them must stay
// clean.
//
// Expected findings: exactly 3 x concurrency-static-state
// (g_call_count, g_cache, local_calls).

#include <atomic>
#include <vector>

namespace kwsc {

static int g_call_count = 0;
static std::vector<int> g_cache;

static constexpr int kThreshold = 64;
static const bool kVerbose = false;
static std::atomic<int> g_inflight{0};
static thread_local int tls_scratch = 0;

int Bump() {
  static int local_calls = 0;
  return ++local_calls + g_call_count + kThreshold + tls_scratch;
}

}  // namespace kwsc
