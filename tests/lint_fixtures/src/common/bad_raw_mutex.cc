// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Seeded concurrency-raw-mutex violations: raw std synchronization types
// outside common/mutex.h. The lock_guard line mentions two banned types
// (lock_guard and its std::mutex template argument) and fires twice.
//
// Expected findings: exactly 4 x concurrency-raw-mutex.

#include <condition_variable>
#include <mutex>

namespace kwsc {

void CriticalSection() {
  std::mutex m;
  std::condition_variable cv;
  std::lock_guard<std::mutex> hold(m);
  cv.notify_all();
}

}  // namespace kwsc
