// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Seeded abi-raw-width violations: platform-width integer spellings inside a
// registered (persisted) struct's field declarations. sizeof/offsetof of
// such a struct is a function of the host ABI — exactly what a locked
// on-disk layout must never be. The rule is field-declaration-granular:
// the `int` method parameter and the `static` member in the control struct
// are not layout and must not fire.
//
// Expected findings: exactly 3 x abi-raw-width (the long, the unsigned,
// and the size_t field of SloppyHeader).

#include <cstdint>

#include "common/abi.h"

namespace kwsc {

struct SloppyHeader {
  long offset;
  unsigned flags;
  size_t count;
  uint32_t version;
};
KWSC_ABI_STRUCT(SloppyHeader);

struct StrictHeader {
  int64_t offset;
  uint32_t flags;
  uint64_t count;
  uint32_t version;

  static constexpr int kArity = 2;

  uint64_t End(int extra) const { return offset + count + extra; }
};
KWSC_ABI_STRUCT(StrictHeader);

}  // namespace kwsc
