// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Seeded abi-version-bump violation: Magic() framing whose version operand
// is a numeric literal. The abi-gate ties layout drift to a bump of the
// named constant in core/format_versions.h; a literal at the call site is
// invisible to that gate. The constant-using pair below is the control.
//
// Expected findings: exactly 1 x abi-version-bump (LiteralVersioned::Save).

#include <iostream>
#include <vector>

#include "common/macros.h"
#include "common/serialize.h"
#include "core/format_versions.h"

namespace kwsc {

struct LiteralVersioned {
  std::vector<uint32_t> ids;

  void Save(std::ostream* out) const {
    OutputArchive ar(out);
    ar.Magic("KWBD", 3);
    ar.Vec(ids);
  }

  static LiteralVersioned Load(std::istream* in) {
    InputArchive ar(in);
    const uint32_t version = ar.Magic("KWBD");
    KWSC_CHECK_MSG(version == 3, "unsupported version %u", version);
    LiteralVersioned loaded;
    loaded.ids = ar.Vec<uint32_t>();
    return loaded;
  }
};

struct ConstantVersioned {
  std::vector<uint32_t> ids;

  void Save(std::ostream* out) const {
    OutputArchive ar(out);
    ar.Magic("KWGD", kCorpusFormatVersion);
    ar.Vec(ids);
  }

  static ConstantVersioned Load(std::istream* in) {
    InputArchive ar(in);
    const uint32_t version = ar.Magic("KWGD");
    KWSC_CHECK_MSG(version == kCorpusFormatVersion, "unsupported version %u",
                   version);
    ConstantVersioned loaded;
    loaded.ids = ar.Vec<uint32_t>();
    return loaded;
  }
};

}  // namespace kwsc
