// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Seeded abi-unregistered-struct violation: a record type reinterpreted from
// mapped bytes (a Slab element) whose layout nothing locks — it has no
// KWSC_ABI_STRUCT registration, so FORMATS.lock would never see it drift.
// The registered record on the same slab path is the control.
//
// Expected findings: exactly 1 x abi-unregistered-struct (UnlockedRec).

#include <cstdint>
#include <span>

#include "common/abi.h"
#include "common/flat_arena.h"

namespace kwsc {

struct UnlockedRec {
  uint32_t keyword;
  uint32_t count;
};

struct LockedRec {
  uint32_t keyword;
  uint32_t count;
};
KWSC_ABI_STRUCT(LockedRec);

uint64_t SumCounts(const FlatArenaReader& reader, SlabRef unlocked,
                   SlabRef locked) {
  uint64_t total = 0;
  for (const UnlockedRec& rec : reader.Slab<UnlockedRec>(unlocked)) {
    total += rec.count;
  }
  for (const LockedRec& rec : reader.Slab<LockedRec>(locked)) {
    total += rec.count;
  }
  return total;
}

}  // namespace kwsc
