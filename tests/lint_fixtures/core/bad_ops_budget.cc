// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Lint fixture: seeded ops-budget violation (the path contains "core/", so
// the rule is in scope). Scanned as text by lint_test, never compiled.

#include <cstdint>
#include <span>
#include <vector>

namespace kwsc {

using ObjectId = uint32_t;
struct OpsBudget {
  void Charge(uint64_t n);
};

uint64_t CountUncharged(std::span<const ObjectId> candidates,
                        OpsBudget* budget) {
  uint64_t hits = 0;
  for (ObjectId id : candidates) {  // seeded violation: no Charge in body
    hits += id % 2;
  }
  return hits;
}

uint64_t CountCharged(std::span<const ObjectId> candidates,
                      OpsBudget* budget) {
  uint64_t hits = 0;
  for (ObjectId id : candidates) {  // charged: not a violation
    budget->Charge(1);
    hits += id % 2;
  }
  return hits;
}

uint64_t CountWithoutBudget(std::span<const ObjectId> candidates) {
  uint64_t hits = 0;
  // No OpsBudget parameter: enumeration here is not on a budgeted path.
  for (ObjectId id : candidates) hits += id % 2;
  return hits;
}

}  // namespace kwsc
