// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Lint fixture: control file with no violations, plus one inline-suppressed
// site proving `kwsc-lint: allow(rule-id)` works. Scanned as text by
// lint_test, never compiled.

#include <chrono>
#include <cstdint>
#include <vector>

namespace kwsc {

int64_t DeliberateWallClockRead() {
  // kwsc-lint: allow(determinism-clock)
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

std::vector<uint32_t> PlainLoop(const std::vector<uint32_t>& in) {
  std::vector<uint32_t> out;
  for (uint32_t v : in) out.push_back(v);
  return out;
}

}  // namespace kwsc
