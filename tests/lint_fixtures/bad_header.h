// Lint fixture: seeded copyright, include-guard and using-namespace
// violations (the missing copyright line is itself seeded violation 1).
// Scanned as text by lint_test, never compiled.

#ifndef WRONG_GUARD_NAME_H  // seeded violation 2: guard must spell the path
#define WRONG_GUARD_NAME_H

#include <vector>

using namespace std;  // seeded violation 3: using-namespace in a header

namespace kwsc {
inline int Answer() { return 42; }
}  // namespace kwsc

#endif  // WRONG_GUARD_NAME_H
