// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Lint fixture: seeded v2 flat-container pairing violations. Scanned as
// text by lint_test, never compiled.

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <vector>

namespace kwsc {

struct OutputArchive;
struct InputArchive;
struct MmapFile;

// Violation 1: a flat writer with no flat reader in the same file.
struct MissingLoadFlat {
  void SaveFlat(std::ostream* out, uint32_t family_tag) const {
    write_bytes(out, family_tag);
    // seeded violation: no LoadFlat anywhere in this file
  }
  void write_bytes(std::ostream* out, uint32_t tag) const;
};

// Violation 2: a flat reader with no flat writer in the same file.
struct MissingSaveFlat {
  static MissingSaveFlat LoadFlat(std::shared_ptr<const MmapFile> file,
                                  uint64_t offset) {
    // seeded violation: no SaveFlat anywhere in this file
    return MissingSaveFlat{};
  }
};

// Violation 3: the v1 Save/Load pair is skewed even though a correct flat
// pair coexists. Pairing by owner alone would count two save functions and
// silently skip this check; exact-name pairing must still catch it.
struct SkewedV1WithFlat {
  std::vector<uint32_t> items;
  uint64_t weight = 0;

  void Save(OutputArchive* ar) const {
    ar->Vec(items);
    ar->Pod(weight);
  }
  void Load(InputArchive* ar) {
    items = ar->Vec<uint32_t>();
    // seeded violation: forgot to read weight
  }
  void SaveFlat(std::ostream* out, uint32_t family_tag) const {
    write_bytes(out, family_tag);
  }
  static SkewedV1WithFlat LoadFlat(std::shared_ptr<const MmapFile> file,
                                   uint64_t offset) {
    return SkewedV1WithFlat{};
  }
  void write_bytes(std::ostream* out, uint32_t tag) const;
};

// Control: symmetric v1 pair plus a complete flat pair is clean.
struct FlatControl {
  std::vector<uint32_t> items;

  void Save(OutputArchive* ar) const { ar->Vec(items); }
  void Load(InputArchive* ar) { items = ar->Vec<uint32_t>(); }
  void SaveFlat(std::ostream* out, uint32_t family_tag) const {
    write_bytes(out, family_tag);
  }
  static FlatControl LoadFlat(std::shared_ptr<const MmapFile> file,
                              uint64_t offset) {
    return FlatControl{};
  }
  void write_bytes(std::ostream* out, uint32_t tag) const;
};

}  // namespace kwsc
