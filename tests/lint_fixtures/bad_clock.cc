// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Lint fixture: seeded determinism-clock violations. Scanned as text by
// lint_test, never compiled.

#include <chrono>
#include <cstdlib>
#include <ctime>

namespace kwsc {

double SeedFromWallClock() {
  auto now = std::chrono::steady_clock::now();  // seeded violation 1
  (void)now;
  std::srand(42);                               // seeded violation 2
  return static_cast<double>(std::rand());      // seeded violation 3
}

long StampQuery() {
  return std::time(nullptr);                    // seeded violation 4
}

// A banned name inside a string literal is not a violation.
const char* NotAViolation() { return "steady_clock in a string"; }

}  // namespace kwsc
