// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Lint fixture: seeded hash-order violation. Scanned as text by lint_test,
// never compiled. The violating site is last in the file so no later sort
// can fall inside the rule's lookahead window.

#include <algorithm>
#include <cstdint>
#include <vector>

namespace kwsc {

template <typename K, typename V>
struct FakeMap {
  template <typename Fn>
  void ForEach(Fn&& fn) const;
};

std::vector<uint32_t> DumpSorted(const FakeMap<uint32_t, uint32_t>& map) {
  std::vector<uint32_t> out;
  map.ForEach([&](uint32_t key, uint32_t) { out.push_back(key); });
  std::sort(out.begin(), out.end());  // canonical idiom: not a violation
  return out;
}

std::vector<uint32_t> DumpUnsorted(const FakeMap<uint32_t, uint32_t>& map) {
  std::vector<uint32_t> out;
  map.ForEach([&](uint32_t key, uint32_t) {  // seeded violation: no sort
    out.push_back(key);
  });
  return out;
}

}  // namespace kwsc
