// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Lint fixture: seeded archive-symmetry violations, one per skew class.
// Scanned as text by lint_test, never compiled.

#include <cstdint>
#include <vector>

namespace kwsc {

struct OutputArchive;
struct InputArchive;

// Skew class 1: Load drops a field (op-count mismatch).
struct DroppedField {
  std::vector<uint32_t> items;
  uint64_t weight = 0;

  void Save(OutputArchive* ar) const {
    ar->Vec(items);
    ar->Pod(weight);
  }
  void Load(InputArchive* ar) {
    items = ar->Vec<uint32_t>();
    // seeded violation: forgot to read weight
  }
};

// Skew class 2: fields read in the wrong order (op-kind mismatch).
struct SwappedOrder {
  std::vector<uint32_t> items;
  uint64_t weight = 0;

  void Save(OutputArchive* ar) const {
    ar->Pod(weight);
    ar->Vec(items);
  }
  void Load(InputArchive* ar) {
    items = ar->Vec<uint32_t>();  // seeded violation: Vec before Pod
    weight = ar->Pod<uint64_t>();
  }
};

// Skew class 3: explicit element types disagree (silent width change).
struct NarrowedField {
  std::vector<uint64_t> items;

  void Save(OutputArchive* ar) const { ar->Vec<uint64_t>(items); }
  void Load(InputArchive* ar) {
    items_from(ar->Vec<uint32_t>());  // seeded violation: u64 vs u32
  }
  void items_from(std::vector<uint32_t> v);
};

// Control: a symmetric pair is not a violation.
struct Symmetric {
  std::vector<uint32_t> items;
  uint64_t weight = 0;

  void Save(OutputArchive* ar) const {
    ar->Vec(items);
    ar->Pod(weight);
  }
  void Load(InputArchive* ar) {
    items = ar->Vec<uint32_t>();
    weight = ar->Pod<uint64_t>();
  }
};

}  // namespace kwsc
