// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Tests for the string vocabulary (keyword interning) and its end-to-end
// use building an index over string-tagged objects.

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/orp_kw.h"
#include "text/vocabulary.h"

namespace kwsc {
namespace {

TEST(Vocabulary, InternIsIdempotent) {
  Vocabulary vocab;
  const KeywordId pool = vocab.Intern("pool");
  const KeywordId spa = vocab.Intern("spa");
  EXPECT_NE(pool, spa);
  EXPECT_EQ(vocab.Intern("pool"), pool);
  EXPECT_EQ(vocab.Intern("spa"), spa);
  EXPECT_EQ(vocab.size(), 2u);
}

TEST(Vocabulary, DenseFirstSeenIds) {
  Vocabulary vocab;
  EXPECT_EQ(vocab.Intern("a"), 0u);
  EXPECT_EQ(vocab.Intern("b"), 1u);
  EXPECT_EQ(vocab.Intern("c"), 2u);
  EXPECT_EQ(vocab.Intern("b"), 1u);
}

TEST(Vocabulary, FindWithoutInterning) {
  Vocabulary vocab;
  vocab.Intern("wifi");
  EXPECT_EQ(vocab.Find("wifi"), 0u);
  EXPECT_EQ(vocab.Find("sauna"), Vocabulary::kInvalidKeyword);
  EXPECT_EQ(vocab.size(), 1u);  // Find never interns.
}

TEST(Vocabulary, TermRoundTrip) {
  Vocabulary vocab;
  std::vector<std::string> words = {"alpha", "beta", "gamma", ""};
  for (const auto& w : words) vocab.Intern(w);
  for (const auto& w : words) {
    EXPECT_EQ(vocab.Term(vocab.Find(w)), w);
  }
}

TEST(Vocabulary, ManyRandomStringsStayDistinct) {
  Vocabulary vocab;
  Rng rng(4040);
  std::vector<std::string> words;
  for (int i = 0; i < 5000; ++i) {
    std::string w;
    const int len = 1 + static_cast<int>(rng.NextBounded(12));
    for (int j = 0; j < len; ++j) {
      w.push_back(static_cast<char>('a' + rng.NextBounded(26)));
    }
    words.push_back(std::move(w));
  }
  std::vector<KeywordId> ids;
  for (const auto& w : words) ids.push_back(vocab.Intern(w));
  for (size_t i = 0; i < words.size(); ++i) {
    EXPECT_EQ(vocab.Find(words[i]), ids[i]);
    EXPECT_EQ(vocab.Term(ids[i]), words[i]);
  }
}

TEST(Vocabulary, MakeDocumentSortsAndDedups) {
  Vocabulary vocab;
  Document doc = vocab.MakeDocument({"pool", "spa", "pool", "gym"});
  EXPECT_EQ(doc.size(), 3u);
  EXPECT_TRUE(doc.Contains(vocab.Find("pool")));
  EXPECT_TRUE(doc.Contains(vocab.Find("gym")));
}

TEST(Vocabulary, EndToEndWithStringTags) {
  // The intended workflow: intern tags, build documents, index, query by
  // string through the vocabulary.
  Vocabulary vocab;
  std::vector<Document> docs = {
      vocab.MakeDocument({"pool", "parking"}),
      vocab.MakeDocument({"pool", "pets"}),
      vocab.MakeDocument({"pool", "parking", "pets"}),
  };
  std::vector<Point<2>> pts = {{{1, 1}}, {{2, 2}}, {{3, 3}}};
  Corpus corpus(std::move(docs));
  FrameworkOptions opt;
  opt.k = 2;
  OrpKwIndex<2> index(pts, &corpus, opt);
  std::vector<KeywordId> kws = {vocab.Find("parking"), vocab.Find("pets")};
  auto got = index.Query(Box<2>::Everything(), kws);
  EXPECT_EQ(got, (std::vector<ObjectId>{2}));
}

}  // namespace
}  // namespace kwsc
