// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Tests for kwsc-abi (tools/kwsc_abi): model extraction over in-memory
// sources, probe-source emission, probe-output parsing, manifest rendering
// (determinism, padding runs), the drift-gate diff rules, and — against the
// real tree — a clean, complete model whose format versions agree with the
// committed FORMATS.lock. The byte-level gate around FORMATS.lock itself
// needs the compiled probe and lives in tools/run_abi.sh (CI job abi-gate).

#include "abi.h"

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace kwsc {
namespace abi {
namespace {

#ifndef KWSC_SOURCE_DIR
#error "abi_test requires the KWSC_SOURCE_DIR compile definition"
#endif

std::string Root() { return KWSC_SOURCE_DIR; }

std::string Render(const std::vector<std::string>& lines) {
  std::string out;
  for (const std::string& line : lines) out += line + "\n";
  return out;
}

// A minimal two-file tree: a version table declaring one format, and a
// header with a registered struct, a padded registered struct, a Save body,
// and the tag spelling.
std::vector<SourceFile> DemoTree() {
  SourceFile versions;
  versions.path = "src/core/format_versions.h";
  versions.contents = R"(
/// kwsc-abi: format demo tags=KWDM files=core/demo.h
inline constexpr uint32_t kDemoFormatVersion = 3;
)";
  SourceFile demo;
  demo.path = "src/core/demo.h";
  demo.contents = R"(
struct DemoRec {
  uint64_t b;
  uint32_t a;
  uint32_t c[2];
};
KWSC_ABI_STRUCT(DemoRec);

struct PadRec {
  uint32_t x;
  uint64_t y;
};
KWSC_ABI_STRUCT_PADDED_AS(PadDemo, PadRec);

class Demo {
 public:
  void Save(std::ostream* out) const {
    OutputArchive ar(out);
    ar.Magic("KWDM", kDemoFormatVersion);
    ar.Pod<uint64_t>(n_);
    ar.Vec(items_);
    SaveExtras(out);
  }
};
)";
  return {versions, demo};
}

// The measured layout the demo tree's probe would print.
ProbeLayout DemoLayout() {
  ProbeLayout layout;
  layout["DemoRec"].size = 16;
  layout["DemoRec"].align = 8;
  layout["DemoRec"].fields["b"] = {0, 8};
  layout["DemoRec"].fields["a"] = {8, 4};
  layout["DemoRec"].fields["c"] = {12, 4};
  layout["PadDemo"].size = 16;
  layout["PadDemo"].align = 8;
  layout["PadDemo"].fields["x"] = {0, 4};
  layout["PadDemo"].fields["y"] = {8, 8};
  return layout;
}

TEST(AbiModel, ExtractsFormatsStructsSectionsTags) {
  const Model model = BuildModel(DemoTree());
  EXPECT_TRUE(model.errors.empty()) << Render(model.errors);

  ASSERT_EQ(model.formats.size(), 1u);
  EXPECT_EQ(model.formats[0].key, "demo");
  EXPECT_EQ(model.formats[0].constant, "kDemoFormatVersion");
  EXPECT_EQ(model.formats[0].version, 3u);
  ASSERT_EQ(model.formats[0].tags.size(), 1u);
  EXPECT_EQ(model.formats[0].tags[0], "KWDM");

  ASSERT_EQ(model.structs.size(), 2u);  // sorted by alias
  EXPECT_EQ(model.structs[0].alias, "DemoRec");
  EXPECT_FALSE(model.structs[0].padded);
  ASSERT_EQ(model.structs[0].fields.size(), 3u);
  EXPECT_EQ(model.structs[0].fields[0].name, "b");
  EXPECT_EQ(model.structs[0].fields[0].type, "uint64_t");
  EXPECT_EQ(model.structs[0].fields[2].name, "c");
  EXPECT_EQ(model.structs[0].fields[2].array, "[2]");
  EXPECT_EQ(model.structs[1].alias, "PadDemo");
  EXPECT_TRUE(model.structs[1].padded);
  EXPECT_EQ(model.structs[1].type, "PadRec");

  ASSERT_EQ(model.sections.size(), 1u);
  EXPECT_EQ(model.sections[0].function, "Demo::Save");
  ASSERT_EQ(model.sections[0].ops.size(), 4u);
  EXPECT_EQ(model.sections[0].ops[0].kind, "Magic");
  EXPECT_EQ(model.sections[0].ops[0].detail, "\"KWDM\"");
  EXPECT_EQ(model.sections[0].ops[1].kind, "Pod");
  EXPECT_EQ(model.sections[0].ops[1].detail, "uint64_t");
  EXPECT_EQ(model.sections[0].ops[2].kind, "Vec");
  EXPECT_EQ(model.sections[0].ops[3].kind, "Sub");
  EXPECT_EQ(model.sections[0].ops[3].detail, "SaveExtras");

  ASSERT_EQ(model.tags.size(), 1u);
  EXPECT_EQ(model.tags[0].tag, "KWDM");
}

TEST(AbiModel, UncoveredContributingFileIsAnError) {
  std::vector<SourceFile> sources = DemoTree();
  sources[1].path = "src/core/other.h";  // no format's files= matches
  const Model model = BuildModel(sources);
  ASSERT_FALSE(model.errors.empty());
  EXPECT_NE(Render(model.errors).find("no `kwsc-abi: format` annotation"),
            std::string::npos)
      << Render(model.errors);
}

TEST(AbiModel, UndeclaredTagIsAnError) {
  std::vector<SourceFile> sources = DemoTree();
  sources[1].contents += "\ninline constexpr const char* kOther = \"KWZZ\";\n";
  const Model model = BuildModel(sources);
  ASSERT_FALSE(model.errors.empty());
  EXPECT_NE(Render(model.errors).find("'KWZZ' is not declared"),
            std::string::npos)
      << Render(model.errors);
}

TEST(AbiModel, UnresolvedRegistrationIsAnError) {
  std::vector<SourceFile> sources = DemoTree();
  sources[1].contents += "\nKWSC_ABI_STRUCT(NoSuchRec);\n";
  const Model model = BuildModel(sources);
  ASSERT_FALSE(model.errors.empty());
  EXPECT_NE(Render(model.errors).find("no struct definition named "
                                      "'NoSuchRec'"),
            std::string::npos)
      << Render(model.errors);
}

TEST(AbiProbe, SourceCoversEveryRegistrationAndAssertsContract) {
  const Model model = BuildModel(DemoTree());
  const std::string probe = EmitProbeSource(model);
  EXPECT_NE(probe.find("#include \"core/demo.h\""), std::string::npos);
  EXPECT_NE(probe.find("kwsc::KwscAbi_DemoRec"), std::string::npos);
  EXPECT_NE(probe.find("kwsc::KwscAbi_PadDemo"), std::string::npos);
  EXPECT_NE(probe.find("std::endian::native == std::endian::little"),
            std::string::npos);
  EXPECT_NE(probe.find("std::is_trivially_copyable_v<T>"), std::string::npos);
  // Zero-padding sum assert for the non-PADDED struct only.
  EXPECT_NE(probe.find("sizeof(T::b) + sizeof(T::a) + sizeof(T::c) == "
                       "sizeof(T)"),
            std::string::npos);
  EXPECT_EQ(probe.find("sizeof(T::x) + sizeof(T::y) == sizeof(T)"),
            std::string::npos);
  EXPECT_NE(probe.find("offsetof(T, b)"), std::string::npos);
}

TEST(AbiProbe, OutputParsesBackToLayout) {
  std::vector<std::string> errors;
  const ProbeLayout layout = ParseProbeOutput(
      "struct DemoRec size 16 align 8\n"
      "field DemoRec b offset 0 size 8\n"
      "field DemoRec a offset 8 size 4\n",
      &errors);
  EXPECT_TRUE(errors.empty()) << Render(errors);
  ASSERT_EQ(layout.count("DemoRec"), 1u);
  EXPECT_EQ(layout.at("DemoRec").size, 16u);
  EXPECT_EQ(layout.at("DemoRec").align, 8u);
  EXPECT_EQ(layout.at("DemoRec").fields.at("a").offset, 8u);
  EXPECT_EQ(layout.at("DemoRec").fields.at("a").size, 4u);

  errors.clear();
  ParseProbeOutput("struct Broken size x align 8\n", &errors);
  EXPECT_FALSE(errors.empty());
}

TEST(AbiManifest, RendersDeterministicallyWithPaddingRuns) {
  const Model model = BuildModel(DemoTree());
  std::vector<std::string> errors;
  const std::string manifest = RenderManifest(model, DemoLayout(), &errors);
  EXPECT_TRUE(errors.empty()) << Render(errors);
  EXPECT_NE(manifest.find("format demo version 3 constant kDemoFormatVersion"),
            std::string::npos)
      << manifest;
  EXPECT_NE(manifest.find("tag KWDM"), std::string::npos);
  EXPECT_NE(manifest.find("struct DemoRec type DemoRec size 16 align 8"),
            std::string::npos);
  EXPECT_NE(manifest.find("field b uint64_t offset 0 size 8"),
            std::string::npos);
  EXPECT_NE(manifest.find("field c uint32_t[2] offset 12 size 4"),
            std::string::npos);
  EXPECT_NE(manifest.find("section src/core/demo.h Demo::Save"),
            std::string::npos);
  EXPECT_NE(manifest.find("op Magic \"KWDM\""), std::string::npos);
  // The PADDED struct's alignment gap is recorded as an explicit run, so a
  // gap that moves diffs even when the surviving field offsets do not.
  EXPECT_NE(manifest.find("padding offset 4 len 4"), std::string::npos)
      << manifest;

  std::vector<std::string> errors2;
  EXPECT_EQ(manifest, RenderManifest(model, DemoLayout(), &errors2));
}

TEST(AbiManifest, MissingProbeEntryIsAnError) {
  const Model model = BuildModel(DemoTree());
  ProbeLayout layout = DemoLayout();
  layout.erase("PadDemo");
  std::vector<std::string> errors;
  const std::string manifest = RenderManifest(model, layout, &errors);
  EXPECT_TRUE(manifest.empty());
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors[0].find("no probe measurement"), std::string::npos);
}

// --- The drift gate: DiffManifests' versioning contract. -------------------

constexpr char kOldManifest[] =
    "# comment\n"
    "format demo version 3 constant kDemoFormatVersion\n"
    "  struct DemoRec type DemoRec size 16 align 8\n"
    "    field b uint64_t offset 0 size 8\n"
    "    field a uint32_t offset 8 size 4\n";

TEST(AbiDiff, IdenticalManifestsAreClean) {
  const DiffResult result = DiffManifests(kOldManifest, kOldManifest);
  EXPECT_TRUE(result.changes.empty()) << Render(result.changes);
  EXPECT_TRUE(result.violations.empty()) << Render(result.violations);
}

TEST(AbiDiff, ContentChangeWithoutBumpIsAViolation) {
  // The field-reorder / width-change seeds: either way the locked block
  // differs while the version stays put.
  const std::string reordered =
      "format demo version 3 constant kDemoFormatVersion\n"
      "  struct DemoRec type DemoRec size 16 align 8\n"
      "    field a uint32_t offset 0 size 4\n"
      "    field b uint64_t offset 8 size 8\n";
  const DiffResult result = DiffManifests(kOldManifest, reordered);
  EXPECT_FALSE(result.changes.empty());
  ASSERT_EQ(result.violations.size(), 1u) << Render(result.violations);
  EXPECT_NE(result.violations[0].find("version stayed 3"), std::string::npos);
  EXPECT_NE(result.violations[0].find("kDemoFormatVersion"),
            std::string::npos);
}

TEST(AbiDiff, ContentChangeWithBumpIsContractClean) {
  const std::string widened =
      "format demo version 4 constant kDemoFormatVersion\n"
      "  struct DemoRec type DemoRec size 24 align 8\n"
      "    field b uint64_t offset 0 size 8\n"
      "    field a uint64_t offset 8 size 8\n";
  const DiffResult result = DiffManifests(kOldManifest, widened);
  EXPECT_FALSE(result.changes.empty());
  EXPECT_TRUE(result.violations.empty()) << Render(result.violations);
}

TEST(AbiDiff, VersionDecreaseIsAViolation) {
  const std::string decreased =
      "format demo version 2 constant kDemoFormatVersion\n"
      "  struct DemoRec type DemoRec size 16 align 8\n"
      "    field b uint64_t offset 0 size 8\n"
      "    field a uint32_t offset 8 size 4\n";
  const DiffResult result = DiffManifests(kOldManifest, decreased);
  ASSERT_FALSE(result.violations.empty());
  EXPECT_NE(result.violations[0].find("went backwards"), std::string::npos);
}

TEST(AbiDiff, RemovedFormatIsAViolationAddedFormatIsNot) {
  const std::string with_extra = std::string(kOldManifest) +
                                 "format extra version 1 constant "
                                 "kExtraFormatVersion\n"
                                 "  tag KWEX\n";
  const DiffResult added = DiffManifests(kOldManifest, with_extra);
  EXPECT_TRUE(added.violations.empty()) << Render(added.violations);
  ASSERT_EQ(added.changes.size(), 1u);
  EXPECT_NE(added.changes[0].find("added"), std::string::npos);

  const DiffResult removed = DiffManifests(with_extra, kOldManifest);
  ASSERT_EQ(removed.violations.size(), 1u) << Render(removed.violations);
  EXPECT_NE(removed.violations[0].find("removed"), std::string::npos);
}

// --- The real tree. --------------------------------------------------------

TEST(AbiRealTree, ModelIsCleanAndProbeCoversEveryRegistration) {
  const Model model = BuildModel(LoadTree(Root()));
  EXPECT_TRUE(model.errors.empty()) << Render(model.errors);
  EXPECT_GE(model.formats.size(), 11u);
  EXPECT_GE(model.structs.size(), 15u);
  EXPECT_GE(model.sections.size(), 20u);
  const std::string probe = EmitProbeSource(model);
  for (const StructInfo& info : model.structs) {
    EXPECT_NE(probe.find("KwscAbi_" + info.alias), std::string::npos)
        << info.alias;
    EXPECT_FALSE(info.fields.empty()) << info.alias;
  }
}

// The committed manifest must agree with the source tree on every format's
// version (full byte-level agreement, which needs the compiled probe, is
// tools/run_abi.sh's job — this catches the stale-constant half in-process).
TEST(AbiRealTree, CommittedManifestVersionsMatchFormatTable) {
  std::ifstream in(Root() + "/FORMATS.lock", std::ios::binary);
  ASSERT_TRUE(in.good()) << "FORMATS.lock missing; run tools/run_abi.sh "
                            "--update";
  std::ostringstream contents;
  contents << in.rdbuf();
  const std::string lock = contents.str();
  const Model model = BuildModel(LoadTree(Root()));
  ASSERT_TRUE(model.errors.empty()) << Render(model.errors);
  for (const FormatSpec& spec : model.formats) {
    const std::string header = "format " + spec.key + " version " +
                               std::to_string(spec.version) + " constant " +
                               spec.constant + "\n";
    EXPECT_NE(lock.find(header), std::string::npos)
        << "FORMATS.lock is stale for format '" << spec.key
        << "'; regenerate with tools/run_abi.sh --update";
  }
  // Self-diff of the committed manifest must be clean.
  const DiffResult self = DiffManifests(lock, lock);
  EXPECT_TRUE(self.changes.empty());
  EXPECT_TRUE(self.violations.empty());
}

}  // namespace
}  // namespace abi
}  // namespace kwsc
