// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Thread-sanitizer stress for the batch-dynamic layer: one writer thread
// applying batched inserts and tombstone deletes (with background merges on
// a shared ThreadPool), several reader threads querying epoch snapshots the
// whole time, plus an auditor thread exercising DebugAuditView mid-merge.
// Runs under the tsan preset (see CMakePresets.json); the correctness
// assertion here is weaker than dynamic_index_test's exact-answer checks —
// readers verify internal consistency of whatever snapshot they observe —
// because the point of this binary is the absence of data-race reports.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "core/dynamic_orp_kw.h"
#include "test_util.h"

namespace kwsc {
namespace {

TEST(DynamicStress, ConcurrentBatchedUpdatesQueriesAndMerges) {
  ThreadPool merge_pool(2);
  FrameworkOptions opt;
  opt.k = 2;
  DynamicOrpKwIndex<2> dynamic(opt, /*buffer_capacity=*/16, &merge_pool);

  constexpr int kRounds = 60;
  constexpr int kReaders = 3;
  std::atomic<bool> done{false};

  std::thread writer([&] {
    Rng rng(4242);
    std::vector<ObjectId> live;
    for (int round = 0; round < kRounds; ++round) {
      const size_t batch = 1 + rng.NextBounded(24);
      std::vector<Point<2>> geoms;
      std::vector<Document> docs;
      for (size_t i = 0; i < batch; ++i) {
        geoms.push_back({{rng.NextDouble(), rng.NextDouble()}});
        docs.push_back(Document{static_cast<KeywordId>(rng.NextBounded(6)),
                                static_cast<KeywordId>(6 + rng.NextBounded(6))});
      }
      const ObjectId first = dynamic.InsertBatch(geoms, std::move(docs));
      for (size_t i = 0; i < batch; ++i) {
        live.push_back(first + static_cast<ObjectId>(i));
      }
      if (round % 3 == 2 && live.size() > 4) {
        std::vector<ObjectId> doomed;
        for (size_t i = 0; i < live.size(); ++i) {
          if (rng.NextBounded(6) == 0) doomed.push_back(live[i]);
        }
        dynamic.DeleteBatch(doomed);
        for (ObjectId id : doomed) {
          live.erase(std::remove(live.begin(), live.end(), id), live.end());
        }
      }
    }
    done.store(true, std::memory_order_release);
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(777 + r);
      uint64_t queries = 0;
      while (!done.load(std::memory_order_acquire) || queries < 32) {
        Box<2> q;
        for (int dim = 0; dim < 2; ++dim) {
          const double a = rng.NextDouble();
          const double b = rng.NextDouble();
          q.lo[dim] = std::min(a, b);
          q.hi[dim] = std::max(a, b);
        }
        const std::vector<KeywordId> kws = {
            static_cast<KeywordId>(rng.NextBounded(6)),
            static_cast<KeywordId>(6 + rng.NextBounded(6))};
        const std::vector<ObjectId> got = dynamic.Query(q, kws);
        // Snapshot consistency: the snapshot queried was published no later
        // than this num_objects() read, and ids are dense and never reused.
        const uint64_t upper = dynamic.num_objects();
        for (ObjectId id : got) EXPECT_LT(id, upper);
        ++queries;
      }
    });
  }

  std::thread auditor([&] {
    int audits = 0;
    while (!done.load(std::memory_order_acquire) || audits < 8) {
      testing::ExpectAuditClean(dynamic);  // Safe mid-merge by design.
      ++audits;
      std::this_thread::yield();
    }
  });

  writer.join();
  for (std::thread& t : readers) t.join();
  auditor.join();

  dynamic.WaitQuiescent();
  EXPECT_FALSE(dynamic.MergeInFlight());
  testing::ExpectAuditClean(dynamic);
  EXPECT_GT(dynamic.num_objects(), 0u);
}

}  // namespace
}  // namespace kwsc
