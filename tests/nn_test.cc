// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Tests for the nearest-neighbour reductions: L∞NN-KW (Corollary 4) and
// L2NN-KW (Corollary 7), against brute-force oracles.

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/nn_l2.h"
#include "core/nn_linf.h"
#include "test_util.h"
#include "workload/generator.h"

namespace kwsc {
namespace {

using testing::BruteNearest;
using testing::DistanceProfile;

struct NnParam {
  uint32_t n;
  int k;
  uint64_t t;
  PointDistribution dist;
};

class LinfNnTest : public ::testing::TestWithParam<NnParam> {};

TEST_P(LinfNnTest, MatchesBruteForceDistances) {
  const auto p = GetParam();
  Rng rng(90000 + p.n + p.k + p.t);
  CorpusSpec spec;
  spec.num_objects = p.n;
  spec.vocab_size = std::max<uint32_t>(15, p.n / 20);
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<2>(p.n, p.dist, &rng);
  FrameworkOptions opt;
  opt.k = p.k;
  LinfNnIndex<2> index(pts, &corpus, opt);
  auto dist = [](const Point<2>& a, const Point<2>& b) {
    return LInfDistance(a, b);
  };
  for (int trial = 0; trial < 8; ++trial) {
    Point<2> q{{rng.NextDouble(), rng.NextDouble()}};
    auto kws = PickQueryKeywords(
        corpus, p.k,
        trial % 2 == 0 ? KeywordPick::kFrequent : KeywordPick::kCooccurring,
        &rng);
    auto got = index.Query(q, p.t, kws);
    auto expected = BruteNearest(std::span<const Point<2>>(pts), corpus, q,
                                 p.t, kws, dist);
    // Compare distance profiles: with real coordinates ties are measure
    // zero, but id sets can still differ at the boundary, so distances are
    // the canonical check.
    ASSERT_EQ(got.size(), expected.size());
    EXPECT_EQ(DistanceProfile(std::span<const Point<2>>(pts), q, got, dist),
              DistanceProfile(std::span<const Point<2>>(pts), q, expected,
                              dist))
        << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LinfNnTest,
    ::testing::Values(NnParam{150, 2, 1, PointDistribution::kUniform},
                      NnParam{600, 2, 5, PointDistribution::kClustered},
                      NnParam{600, 3, 10, PointDistribution::kUniform},
                      NnParam{1500, 2, 25, PointDistribution::kDiagonal},
                      NnParam{1500, 2, 3, PointDistribution::kClustered}));

TEST(LinfNn, FewerMatchesThanTReturnsAll) {
  // Plant exactly 3 objects with the queried keyword pair.
  std::vector<Document> docs;
  std::vector<Point<2>> pts;
  Rng rng(201);
  for (uint32_t i = 0; i < 200; ++i) {
    const bool special = i < 3;
    docs.push_back(special ? Document{0, 1}
                           : Document{2 + i % 5, 7 + i % 3});
    pts.push_back({{rng.NextDouble(), rng.NextDouble()}});
  }
  Corpus corpus(std::move(docs));
  FrameworkOptions opt;
  opt.k = 2;
  LinfNnIndex<2> index(pts, &corpus, opt);
  std::vector<KeywordId> kws = {0, 1};
  auto got = index.Query({{0.5, 0.5}}, 10, kws);
  EXPECT_EQ(got.size(), 3u);
}

TEST(LinfNn, NoMatchesReturnsEmpty) {
  Corpus corpus({Document{0}, Document{1}});
  std::vector<Point<2>> pts = {{{0, 0}}, {{1, 1}}};
  FrameworkOptions opt;
  opt.k = 2;
  LinfNnIndex<2> index(pts, &corpus, opt);
  std::vector<KeywordId> kws = {0, 1};  // No object has both.
  EXPECT_TRUE(index.Query({{0.5, 0.5}}, 1, kws).empty());
}

TEST(LinfNn, CandidateRadiusSelection) {
  // 1-D data at 0, 10, 25; q = 9: candidates {9, 1, 16} sorted {1, 9, 16}.
  std::vector<Document> docs = {Document{0, 1}, Document{0, 1},
                                Document{0, 1}};
  std::vector<Point<1>> pts = {{{0.0}}, {{10.0}}, {{25.0}}};
  Corpus corpus(std::move(docs));
  FrameworkOptions opt;
  opt.k = 2;
  LinfNnIndex<1> index(pts, &corpus, opt);
  Point<1> q{{9.0}};
  EXPECT_DOUBLE_EQ(index.CandidateRadiusByRank(q, 1), 1.0);
  EXPECT_DOUBLE_EQ(index.CandidateRadiusByRank(q, 2), 9.0);
  EXPECT_DOUBLE_EQ(index.CandidateRadiusByRank(q, 3), 16.0);
  EXPECT_EQ(index.CandidateCount(q, 0.5), 0u);
  EXPECT_EQ(index.CandidateCount(q, 1.0), 1u);
  EXPECT_EQ(index.CandidateCount(q, 9.0), 2u);
  EXPECT_EQ(index.CandidateCount(q, 100.0), 3u);
}

TEST(LinfNn, ThreeDimensionsViaDimRed) {
  Rng rng(203);
  const uint32_t n = 400;
  CorpusSpec spec;
  spec.num_objects = n;
  spec.vocab_size = 25;
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<3>(n, PointDistribution::kUniform, &rng);
  FrameworkOptions opt;
  opt.k = 2;
  LinfNnIndex<3> index(pts, &corpus, opt);
  auto dist = [](const Point<3>& a, const Point<3>& b) {
    return LInfDistance(a, b);
  };
  for (int trial = 0; trial < 5; ++trial) {
    Point<3> q{{rng.NextDouble(), rng.NextDouble(), rng.NextDouble()}};
    auto kws = PickQueryKeywords(corpus, 2, KeywordPick::kFrequent, &rng);
    auto got = index.Query(q, 5, kws);
    auto expected = BruteNearest(std::span<const Point<3>>(pts), corpus, q, 5,
                                 kws, dist);
    ASSERT_EQ(got.size(), expected.size());
    EXPECT_EQ(DistanceProfile(std::span<const Point<3>>(pts), q, got, dist),
              DistanceProfile(std::span<const Point<3>>(pts), q, expected,
                              dist));
  }
}

class L2NnTest : public ::testing::TestWithParam<NnParam> {};

TEST_P(L2NnTest, MatchesBruteForceDistances) {
  const auto p = GetParam();
  Rng rng(95000 + p.n + p.k + p.t);
  CorpusSpec spec;
  spec.num_objects = p.n;
  spec.vocab_size = std::max<uint32_t>(15, p.n / 20);
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GenerateIntPoints<2>(p.n, p.dist, &rng, /*max_coord=*/10000);
  FrameworkOptions opt;
  opt.k = p.k;
  L2NnIndex<2> index(pts, &corpus, opt);
  auto dist = [](const IntPoint<2>& a, const IntPoint<2>& b) {
    return L2DistanceSquared(a, b);
  };
  for (int trial = 0; trial < 6; ++trial) {
    IntPoint<2> q{{rng.UniformInt(0, 10000), rng.UniformInt(0, 10000)}};
    auto kws = PickQueryKeywords(
        corpus, p.k,
        trial % 2 == 0 ? KeywordPick::kFrequent : KeywordPick::kCooccurring,
        &rng);
    auto got = index.Query(q, p.t, kws);
    auto expected = BruteNearest(std::span<const IntPoint<2>>(pts), corpus, q,
                                 p.t, kws, dist);
    ASSERT_EQ(got.size(), expected.size()) << "trial " << trial;
    EXPECT_EQ(
        DistanceProfile(std::span<const IntPoint<2>>(pts), q, got, dist),
        DistanceProfile(std::span<const IntPoint<2>>(pts), q, expected, dist))
        << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, L2NnTest,
    ::testing::Values(NnParam{150, 2, 1, PointDistribution::kUniform},
                      NnParam{500, 2, 4, PointDistribution::kClustered},
                      NnParam{500, 3, 8, PointDistribution::kUniform},
                      NnParam{1000, 2, 16, PointDistribution::kDiagonal}));

TEST(L2Nn, ExactTiesByDistanceAreStable) {
  // Four lattice points equidistant from the query; t = 2 must return two
  // objects at exactly that distance.
  std::vector<Document> docs(4, Document{0, 1});
  std::vector<IntPoint<2>> pts = {{{1, 0}}, {{-1, 0}}, {{0, 1}}, {{0, -1}}};
  Corpus corpus(std::move(docs));
  FrameworkOptions opt;
  opt.k = 2;
  L2NnIndex<2> index(pts, &corpus, opt);
  std::vector<KeywordId> kws = {0, 1};
  auto got = index.Query({{0, 0}}, 2, kws);
  ASSERT_EQ(got.size(), 2u);
  for (ObjectId e : got) {
    EXPECT_EQ(L2DistanceSquared(pts[e], IntPoint<2>{{0, 0}}), 1);
  }
}

TEST(L2Nn, QueryAtDataPoint) {
  std::vector<Document> docs = {Document{0, 1}, Document{0, 1},
                                Document{2, 3}};
  std::vector<IntPoint<2>> pts = {{{5, 5}}, {{100, 100}}, {{5, 5}}};
  Corpus corpus(std::move(docs));
  FrameworkOptions opt;
  opt.k = 2;
  L2NnIndex<2> index(pts, &corpus, opt);
  std::vector<KeywordId> kws = {0, 1};
  auto got = index.Query({{5, 5}}, 1, kws);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], 0u);  // Distance 0; object 2 lacks the keywords.
}

}  // namespace
}  // namespace kwsc
