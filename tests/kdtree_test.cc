// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Unit and property tests for the pure-geometry kd-tree substrate.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "geom/box.h"
#include "kdtree/kd_tree.h"
#include "test_util.h"
#include "workload/generator.h"

namespace kwsc {
namespace {

std::vector<uint32_t> Sorted(std::vector<uint32_t> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(KdTree, EmptyTree) {
  KdTree<2> tree{std::span<const Point<2>>()};
  std::vector<uint32_t> out;
  tree.RangeReport({{{0, 0}}, {{1, 1}}}, &out);
  EXPECT_TRUE(out.empty());
}

TEST(KdTree, SinglePoint) {
  std::vector<Point<2>> pts = {{{0.5, 0.5}}};
  KdTree<2> tree{std::span<const Point<2>>(pts)};
  std::vector<uint32_t> out;
  tree.RangeReport({{{0, 0}}, {{1, 1}}}, &out);
  EXPECT_EQ(out, (std::vector<uint32_t>{0}));
  out.clear();
  tree.RangeReport({{{0.6, 0}}, {{1, 1}}}, &out);
  EXPECT_TRUE(out.empty());
}

struct KdTreeParam {
  size_t n;
  PointDistribution dist;
  double selectivity;
};

class KdTreeRangeTest : public ::testing::TestWithParam<KdTreeParam> {};

TEST_P(KdTreeRangeTest, MatchesBruteForce) {
  const auto param = GetParam();
  Rng rng(1000 + param.n);
  auto pts = GeneratePoints<2>(param.n, param.dist, &rng);
  KdTree<2> tree{std::span<const Point<2>>(pts)};
  testing::ExpectAuditClean(tree);
  for (int trial = 0; trial < 10; ++trial) {
    auto q = GenerateBoxQuery(std::span<const Point<2>>(pts),
                              param.selectivity, &rng);
    std::vector<uint32_t> got;
    tree.RangeReport(q, &got);
    std::vector<uint32_t> expected;
    for (uint32_t i = 0; i < pts.size(); ++i) {
      if (q.Contains(pts[i])) expected.push_back(i);
    }
    EXPECT_EQ(Sorted(got), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KdTreeRangeTest,
    ::testing::Values(KdTreeParam{100, PointDistribution::kUniform, 0.1},
                      KdTreeParam{100, PointDistribution::kClustered, 0.3},
                      KdTreeParam{1000, PointDistribution::kUniform, 0.01},
                      KdTreeParam{1000, PointDistribution::kClustered, 0.05},
                      KdTreeParam{1000, PointDistribution::kDiagonal, 0.1},
                      KdTreeParam{5000, PointDistribution::kUniform, 0.002}));

TEST(KdTree, ConvexReportMatchesBruteForce) {
  Rng rng(77);
  auto pts = GeneratePoints<2>(800, PointDistribution::kUniform, &rng);
  KdTree<2> tree{std::span<const Point<2>>(pts)};
  for (int trial = 0; trial < 20; ++trial) {
    ConvexQuery<2> q;
    const int s = 1 + static_cast<int>(rng.NextBounded(3));
    for (int i = 0; i < s; ++i) {
      q.constraints.push_back(GenerateHalfspaceQuery(
          std::span<const Point<2>>(pts), rng.UniformDouble(0.1, 0.9), &rng));
    }
    std::vector<uint32_t> got;
    tree.ConvexReport(q, [&got](uint32_t id) {
      got.push_back(id);
      return true;
    });
    std::vector<uint32_t> expected;
    for (uint32_t i = 0; i < pts.size(); ++i) {
      if (q.Satisfies(pts[i])) expected.push_back(i);
    }
    EXPECT_EQ(Sorted(got), expected);
  }
}

TEST(KdTree, RangeReportEarlyExit) {
  Rng rng(88);
  auto pts = GeneratePoints<2>(500, PointDistribution::kUniform, &rng);
  KdTree<2> tree{std::span<const Point<2>>(pts)};
  int count = 0;
  tree.RangeReport(Box<2>{{{0, 0}}, {{1, 1}}}, [&count](uint32_t) {
    return ++count < 10;
  });
  EXPECT_EQ(count, 10);
}

TEST(KdTree, NearestFirstOrderedByDistance) {
  Rng rng(99);
  auto pts = GeneratePoints<2>(400, PointDistribution::kClustered, &rng);
  KdTree<2> tree{std::span<const Point<2>>(pts)};
  Point<2> q{{0.5, 0.5}};
  double last = -1;
  int emitted = 0;
  tree.NearestFirst(q, L2SquaredDistanceFns<2, double>{},
                    [&](uint32_t, double dist) {
                      EXPECT_GE(dist, last);
                      last = dist;
                      return ++emitted < 50;
                    });
  EXPECT_EQ(emitted, 50);
}

TEST(KdTree, NearestFirstLinfMatchesBruteForce) {
  Rng rng(111);
  auto pts = GeneratePoints<2>(300, PointDistribution::kUniform, &rng);
  KdTree<2> tree{std::span<const Point<2>>(pts)};
  Point<2> q{{0.3, 0.7}};
  std::vector<uint32_t> got;
  tree.NearestFirst(q, LInfDistanceFns<2, double>{},
                    [&](uint32_t id, double) {
                      got.push_back(id);
                      return got.size() < 5;
                    });
  std::vector<uint32_t> ids(pts.size());
  std::iota(ids.begin(), ids.end(), 0);
  std::sort(ids.begin(), ids.end(), [&](uint32_t a, uint32_t b) {
    return LInfDistance(pts[a], q) < LInfDistance(pts[b], q);
  });
  ids.resize(5);
  EXPECT_EQ(Sorted(got), Sorted(ids));
}

TEST(KdTree, ThreeDimensionalRange) {
  Rng rng(123);
  auto pts = GeneratePoints<3>(600, PointDistribution::kUniform, &rng);
  KdTree<3> tree{std::span<const Point<3>>(pts)};
  Box<3> q{{{0.2, 0.2, 0.2}}, {{0.7, 0.7, 0.7}}};
  std::vector<uint32_t> got;
  tree.RangeReport(q, &got);
  std::vector<uint32_t> expected;
  for (uint32_t i = 0; i < pts.size(); ++i) {
    if (q.Contains(pts[i])) expected.push_back(i);
  }
  EXPECT_EQ(Sorted(got), expected);
}

}  // namespace
}  // namespace kwsc
