// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Shared-nothing serving (src/serve/): the router must produce total
// disjoint balanced plans, and the coordinator's scatter-gather must be
// invisible — canonical rows byte-identical to the unsharded engine for
// every shard count, strategy, fan-out mode, and top-t, with the selection
// merge shipping no more bytes than the naive gather.

#include "serve/coordinator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "core/dynamic_orp_kw.h"
#include "core/orp_kw.h"
#include "core/query_engine.h"
#include "obs/metrics.h"
#include "serve/dynamic_shard_replica.h"
#include "serve/merge.h"
#include "serve/shard_router.h"
#include "test_util.h"
#include "text/corpus.h"
#include "workload/generator.h"

namespace kwsc {
namespace {

struct Dataset {
  Corpus corpus;
  std::vector<Point<2>> points;
  std::vector<double> axis_keys;
};

Dataset MakeDataset(uint32_t n, uint64_t seed) {
  Rng rng(seed);
  CorpusSpec spec;
  spec.num_objects = n;
  spec.vocab_size = 96;
  Dataset data;
  data.corpus = GenerateCorpus(spec, &rng);
  data.points = GeneratePoints<2>(n, PointDistribution::kClustered, &rng);
  data.axis_keys.reserve(n);
  for (const auto& p : data.points) data.axis_keys.push_back(p[0]);
  return data;
}

/// A corpus where every document holds hot keywords {0, 1}: broad boxes on
/// query {0, 1} produce candidate sets of hundreds of ids per query — the
/// regime where the selection merge beats the naive gather (small candidate
/// sets fall back to naive by design and ship equal bytes plus summaries).
Dataset MakeDenseDataset(uint32_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Document> docs;
  docs.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    docs.push_back(Document{0, 1, 2 + i % 50, 52 + (i / 7) % 40});
  }
  Dataset data;
  data.corpus = Corpus(std::move(docs));
  data.points = GeneratePoints<2>(n, PointDistribution::kUniform, &rng);
  data.axis_keys.reserve(n);
  for (const auto& p : data.points) data.axis_keys.push_back(p[0]);
  return data;
}

std::vector<BatchQuery<Box<2>>> MakeDenseBatch(const Dataset& data,
                                               size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<BatchQuery<Box<2>>> batch;
  for (size_t i = 0; i < count; ++i) {
    batch.push_back(
        {GenerateBoxQuery(std::span<const Point<2>>(data.points),
                          rng.UniformDouble(0.5, 0.9), &rng),
         {0, 1}});
  }
  return batch;
}

std::vector<BatchQuery<Box<2>>> MakeBatch(const Dataset& data, size_t count,
                                          double min_sel, double max_sel,
                                          KeywordPick pick, uint64_t seed) {
  Rng rng(seed);
  std::vector<BatchQuery<Box<2>>> batch;
  for (size_t i = 0; i < count; ++i) {
    batch.push_back(
        {GenerateBoxQuery(std::span<const Point<2>>(data.points),
                          rng.UniformDouble(min_sel, max_sel), &rng),
         PickQueryKeywords(data.corpus, 2, pick, &rng)});
  }
  return batch;
}

/// The unsharded answer in the coordinator's canonical form: ascending ids,
/// truncated to t when t > 0.
std::vector<std::vector<ObjectId>> CanonicalReference(
    const Dataset& data, std::span<const BatchQuery<Box<2>>> batch,
    uint64_t top_t) {
  FrameworkOptions opt;
  opt.k = 2;
  OrpKwIndex<2> index(data.points, &data.corpus, opt);
  QueryEngine<OrpKwIndex<2>> engine(&index, 1);
  auto result = engine.Run(batch);
  for (auto& row : result.rows) {
    std::sort(row.begin(), row.end());
    if (top_t > 0 && row.size() > top_t) row.resize(top_t);
  }
  return result.rows;
}

void CheckPlanIsTotalDisjoint(const ShardPlan& plan, const Dataset& data,
                              uint32_t num_shards) {
  ASSERT_EQ(plan.num_shards, num_shards);
  ASSERT_EQ(plan.members.size(), num_shards);
  ASSERT_EQ(plan.shard_of.size(), data.corpus.num_objects());
  std::vector<int> seen(data.corpus.num_objects(), 0);
  uint64_t weight = 0;
  for (uint32_t s = 0; s < num_shards; ++s) {
    uint64_t shard_weight = 0;
    for (size_t i = 0; i < plan.members[s].size(); ++i) {
      const ObjectId e = plan.members[s][i];
      EXPECT_EQ(plan.shard_of[e], s);
      if (i > 0) {
        EXPECT_LT(plan.members[s][i - 1], e);  // Ascending.
      }
      ++seen[e];
      shard_weight += data.corpus.doc(e).size();
    }
    EXPECT_EQ(plan.shard_weight[s], shard_weight);
    weight += shard_weight;
  }
  for (int count : seen) EXPECT_EQ(count, 1);  // Total and disjoint.
  EXPECT_EQ(weight, data.corpus.total_weight());
}

TEST(ShardRouter, SpacePlanIsTotalDisjointAndBalanced) {
  const Dataset data = MakeDataset(600, 4401);
  for (uint32_t shards : {1u, 2u, 4u, 7u}) {
    ShardRouter router(ShardStrategy::kSpacePartitioned, shards);
    const ShardPlan plan = router.Plan(data.corpus, data.axis_keys);
    CheckPlanIsTotalDisjoint(plan, data, shards);
    // Balanced-cut quota: each shard's group weighs at most total/S, plus
    // at most one promoted separator document.
    const uint64_t max_doc = 8;  // CorpusSpec default max_doc_len.
    for (uint64_t w : plan.shard_weight) {
      EXPECT_LE(w, data.corpus.total_weight() / shards + max_doc);
    }
    // Deterministic: the same inputs give the same plan.
    const ShardPlan again = router.Plan(data.corpus, data.axis_keys);
    EXPECT_EQ(plan.shard_of, again.shard_of);
  }
}

TEST(ShardRouter, KeywordPlanIsTotalDisjointAndDeterministic) {
  const Dataset data = MakeDataset(600, 4403);
  for (uint32_t shards : {1u, 2u, 4u, 7u}) {
    ShardRouter router(ShardStrategy::kKeywordPartitioned, shards);
    const ShardPlan plan = router.Plan(data.corpus);
    CheckPlanIsTotalDisjoint(plan, data, shards);
    const ShardPlan again = router.Plan(data.corpus);
    EXPECT_EQ(plan.shard_of, again.shard_of);
  }
}

TEST(ShardRouter, KeywordPlanColocatesDominantKeyword) {
  // Two hot keywords + unique fillers: every object's dominant keyword is
  // its hot keyword, so each hot keyword's objects land on one shard.
  std::vector<Document> docs;
  for (uint32_t i = 0; i < 40; ++i) {
    docs.push_back(Document{i % 2, 2 + i});
  }
  const Corpus corpus(std::move(docs));
  ShardRouter router(ShardStrategy::kKeywordPartitioned, 2);
  const ShardPlan plan = router.Plan(corpus);
  for (ObjectId e = 0; e < 40; ++e) {
    EXPECT_EQ(plan.shard_of[e], plan.shard_of[e % 2]);
  }
  EXPECT_NE(plan.shard_of[0], plan.shard_of[1]);
}

TEST(Coordinator, ByteIdenticalToUnshardedEveryShardCountAndStrategy) {
  const Dataset data = MakeDataset(900, 4405);
  const auto batch = MakeBatch(data, 24, 0.05, 0.5,
                               KeywordPick::kCooccurring, 991);
  const auto expected = CanonicalReference(data, batch, /*top_t=*/0);
  FrameworkOptions opt;
  opt.k = 2;
  for (ShardStrategy strategy : {ShardStrategy::kSpacePartitioned,
                                 ShardStrategy::kKeywordPartitioned}) {
    for (uint32_t shards : {1u, 2u, 3u, 4u, 8u}) {
      ShardRouter router(strategy, shards);
      const ShardPlan plan = router.Plan(data.corpus, data.axis_keys);
      for (bool parallel : {false, true}) {
        ServeOptions serve;
        serve.parallel_fanout = parallel;
        Coordinator<OrpKwIndex<2>> coordinator(plan, data.points, data.corpus,
                                               opt, serve);
        const auto result = coordinator.Run(batch);
        ASSERT_EQ(result.rows.size(), batch.size());
        for (size_t i = 0; i < batch.size(); ++i) {
          ASSERT_EQ(result.rows[i], expected[i])
              << "strategy="
              << (strategy == ShardStrategy::kSpacePartitioned ? "space"
                                                               : "keyword")
              << " shards=" << shards << " parallel=" << parallel
              << " query " << i;
        }
        EXPECT_FALSE(result.stats.budget_exhausted);
        EXPECT_EQ(result.bytes.selection, result.bytes.naive);
      }
    }
  }
}

TEST(Coordinator, TopTSelectionMatchesNaiveAndReference) {
  const Dataset data = MakeDenseDataset(1200, 4407);
  const auto batch = MakeDenseBatch(data, 16, 993);
  FrameworkOptions opt;
  opt.k = 2;
  for (uint64_t top_t : {1u, 5u, 64u}) {
    const auto expected = CanonicalReference(data, batch, top_t);
    for (uint32_t shards : {2u, 4u}) {
      ShardRouter router(ShardStrategy::kSpacePartitioned, shards);
      const ShardPlan plan = router.Plan(data.corpus, data.axis_keys);
      ServeOptions selection;
      selection.top_t = top_t;
      selection.selection_merge = true;
      ServeOptions naive = selection;
      naive.selection_merge = false;
      Coordinator<OrpKwIndex<2>> selective(plan, data.points, data.corpus,
                                           opt, selection);
      Coordinator<OrpKwIndex<2>> gather(plan, data.points, data.corpus, opt,
                                        naive);
      const auto selected = selective.Run(batch);
      const auto gathered = gather.Run(batch);
      for (size_t i = 0; i < batch.size(); ++i) {
        ASSERT_EQ(selected.rows[i], expected[i])
            << "t=" << top_t << " shards=" << shards << " query " << i;
        ASSERT_EQ(gathered.rows[i], expected[i]);
      }
      // Selection never ships more than naive; with these candidate sets
      // and a small t it ships strictly less.
      EXPECT_LE(selected.bytes.selection,
                selected.bytes.naive + kMergeSampleKeys * kCandidateBytes *
                                           shards * batch.size());
      if (top_t <= 5) {
        EXPECT_LT(selected.bytes.selection, selected.bytes.naive)
            << "t=" << top_t << " shards=" << shards;
      }
      EXPECT_EQ(gathered.bytes.selection, gathered.bytes.naive);
    }
  }
}

TEST(Coordinator, ShardBudgetsSurfaceExhaustion) {
  const Dataset data = MakeDataset(800, 4409);
  const auto batch =
      MakeBatch(data, 8, 0.5, 0.9, KeywordPick::kFrequent, 995);
  FrameworkOptions opt;
  opt.k = 2;
  ShardRouter router(ShardStrategy::kSpacePartitioned, 4);
  const ShardPlan plan = router.Plan(data.corpus, data.axis_keys);
  ServeOptions serve;
  serve.per_shard_query_ops = 3;  // Far below any real query's work.
  obs::MetricsRegistry registry;
  Coordinator<OrpKwIndex<2>> coordinator(plan, data.points, data.corpus, opt,
                                         serve, &registry);
  const auto result = coordinator.Run(batch);
  EXPECT_GT(result.budget_exhaustions, 0u);
  EXPECT_TRUE(result.stats.budget_exhausted);
  EXPECT_GT(registry.CounterValue("serve.budget_exhausted"), 0u);
}

TEST(Coordinator, RegistryCountersAndFanout) {
  const Dataset data = MakeDenseDataset(1200, 4411);
  const auto batch = MakeDenseBatch(data, 12, 997);
  FrameworkOptions opt;
  opt.k = 2;
  ShardRouter router(ShardStrategy::kSpacePartitioned, 4);
  const ShardPlan plan = router.Plan(data.corpus, data.axis_keys);
  ServeOptions serve;
  serve.top_t = 4;
  obs::MetricsRegistry registry;
  Coordinator<OrpKwIndex<2>> coordinator(plan, data.points, data.corpus, opt,
                                         serve, &registry);
  const auto result = coordinator.Run(batch);
  EXPECT_EQ(registry.CounterValue("serve.batches"), 1u);
  EXPECT_EQ(registry.CounterValue("serve.queries"), batch.size());
  EXPECT_EQ(registry.CounterValue("serve.shard_fanout"), batch.size() * 4);
  EXPECT_EQ(registry.CounterValue("serve.bytes_shipped"),
            result.bytes.selection);
  EXPECT_EQ(registry.CounterValue("serve.bytes_naive"), result.bytes.naive);
  EXPECT_LT(registry.CounterValue("serve.bytes_shipped"),
            registry.CounterValue("serve.bytes_naive"));
  // Per-shard candidate counters: present for every shard, and their sum is
  // the naive candidate volume.
  uint64_t candidates = 0;
  for (uint32_t s = 0; s < 4; ++s) {
    candidates +=
        registry.CounterValue("serve.shard" + std::to_string(s) +
                              ".candidates");
  }
  uint64_t total_results = 0;
  {
    const auto expected = CanonicalReference(data, batch, 0);
    for (const auto& row : expected) total_results += row.size();
  }
  EXPECT_EQ(candidates, total_results);
  // An empty batch still counts as a served batch (mirrors the engine's
  // empty-batch registry contract).
  coordinator.Run(std::span<const BatchQuery<Box<2>>>{});
  EXPECT_EQ(registry.CounterValue("serve.batches"), 2u);
  EXPECT_EQ(registry.CounterValue("serve.queries"), batch.size());
}

TEST(Coordinator, ShardBoundaryEdgeCases) {
  // The scatter analogues of RunShard's block-partition edges: batches
  // smaller than the shard count, equal to it, and a single query; plus a
  // dataset of one object fanned across four shards (three empty replicas).
  const Dataset data = MakeDataset(300, 4413);
  FrameworkOptions opt;
  opt.k = 2;
  ShardRouter router(ShardStrategy::kSpacePartitioned, 4);
  const ShardPlan plan = router.Plan(data.corpus, data.axis_keys);
  ServeOptions serve;
  Coordinator<OrpKwIndex<2>> coordinator(plan, data.points, data.corpus, opt,
                                         serve);
  for (size_t batch_size : {1u, 3u, 4u, 9u}) {
    const auto batch = MakeBatch(data, batch_size, 0.1, 0.6,
                                 KeywordPick::kCooccurring, 1000 + batch_size);
    const auto expected = CanonicalReference(data, batch, 0);
    const auto result = coordinator.Run(batch);
    ASSERT_EQ(result.rows.size(), batch_size);
    for (size_t i = 0; i < batch_size; ++i) {
      ASSERT_EQ(result.rows[i], expected[i]) << "batch=" << batch_size;
    }
  }

  Dataset tiny;
  tiny.corpus = Corpus({Document{0, 1}});
  tiny.points = {Point<2>{{0.5, 0.5}}};
  tiny.axis_keys = {0.5};
  ShardRouter tiny_router(ShardStrategy::kSpacePartitioned, 4);
  const ShardPlan tiny_plan = tiny_router.Plan(tiny.corpus, tiny.axis_keys);
  ASSERT_EQ(tiny_plan.members.size(), 4u);
  Coordinator<OrpKwIndex<2>> tiny_coordinator(tiny_plan, tiny.points,
                                              tiny.corpus, opt, serve);
  Box<2> everywhere;
  everywhere.lo = {{0.0, 0.0}};
  everywhere.hi = {{1.0, 1.0}};
  std::vector<BatchQuery<Box<2>>> tiny_batch{{everywhere, {0, 1}}};
  const auto tiny_result = tiny_coordinator.Run(tiny_batch);
  ASSERT_EQ(tiny_result.rows.size(), 1u);
  EXPECT_EQ(tiny_result.rows[0], (std::vector<ObjectId>{0}));
}

// ---------------------------------------------------------------------------
// Dynamic serving path (serve/dynamic_shard_replica.h): the coordinator
// serves mixed update/query traffic, and its scatter-gather must stay
// invisible — rows identical to one unsharded DynamicIndex fed the same
// update stream, for every shard count, with and without background merges.
// ---------------------------------------------------------------------------

using DynCoordinator = DynamicCoordinator<OrpKwIndex<2>>;
using DynUpdate = DynCoordinator::Update;

TEST(DynamicCoordinator, MixedTrafficMatchesUnshardedDynamicIndex) {
  Rng rng(5501);
  FrameworkOptions opt;
  opt.k = 2;
  for (uint32_t shards : {1u, 3u, 4u}) {
    ServeOptions serve;
    DynCoordinator coordinator(shards, opt, serve, /*buffer_capacity=*/8);
    DynamicOrpKwIndex<2> reference(opt, /*buffer_capacity=*/8);
    std::vector<ObjectId> live;
    for (int round = 0; round < 12; ++round) {
      // A mixed stream: a burst of inserts with some interleaved deletes.
      std::vector<DynUpdate> stream;
      const size_t inserts = 5 + rng.NextBounded(20);
      for (size_t i = 0; i < inserts; ++i) {
        DynUpdate u;
        u.kind = DynUpdate::Kind::kInsert;
        u.geom = Point<2>{{rng.NextDouble(), rng.NextDouble()}};
        u.doc = Document{static_cast<KeywordId>(rng.NextBounded(6)),
                         static_cast<KeywordId>(6 + rng.NextBounded(6))};
        stream.push_back(u);
        if (!live.empty() && rng.NextBounded(4) == 0) {
          DynUpdate del;
          del.kind = DynUpdate::Kind::kDelete;
          del.global_id = live[rng.NextBounded(live.size())];
          live.erase(std::find(live.begin(), live.end(), del.global_id));
          stream.push_back(del);
        }
      }
      // Feed the reference the same stream (ids match: both assign in
      // arrival order).
      for (const DynUpdate& u : stream) {
        if (u.kind == DynUpdate::Kind::kInsert) {
          live.push_back(reference.Insert(u.geom, u.doc));
        } else {
          ASSERT_TRUE(reference.Delete(u.global_id));
        }
      }
      coordinator.ApplyUpdates(stream);
      ASSERT_EQ(coordinator.live_objects(), reference.live_objects());

      std::vector<BatchQuery<Box<2>>> batch;
      for (int qi = 0; qi < 4; ++qi) {
        Box<2> q;
        for (int dim = 0; dim < 2; ++dim) {
          const double a = rng.NextDouble();
          const double b = rng.NextDouble();
          q.lo[dim] = std::min(a, b);
          q.hi[dim] = std::max(a, b);
        }
        batch.push_back({q,
                         {static_cast<KeywordId>(rng.NextBounded(6)),
                          static_cast<KeywordId>(6 + rng.NextBounded(6))}});
      }
      const auto result = coordinator.Run(batch);
      ASSERT_EQ(result.rows.size(), batch.size());
      for (size_t i = 0; i < batch.size(); ++i) {
        EXPECT_EQ(result.rows[i],
                  testing::Sorted(
                      reference.Query(batch[i].region, batch[i].keywords)))
            << "shards=" << shards << " round=" << round << " query " << i;
      }
    }
    for (uint32_t s = 0; s < shards; ++s) {
      testing::ExpectAuditClean(coordinator.replica(s).index());
    }
  }
}

TEST(DynamicCoordinator, BackgroundMergesAndTopTStayExact) {
  ThreadPool merge_pool(2);
  Rng rng(5503);
  FrameworkOptions opt;
  opt.k = 2;
  ServeOptions serve;
  serve.top_t = 5;
  serve.selection_merge = true;
  obs::MetricsRegistry registry;
  DynamicCoordinator<OrpKwIndex<2>> coordinator(
      3, opt, serve, /*buffer_capacity=*/16, &merge_pool, &registry);
  DynamicOrpKwIndex<2> reference(opt, /*buffer_capacity=*/16);
  for (int step = 0; step < 400; ++step) {
    const Point<2> p{{rng.NextDouble(), rng.NextDouble()}};
    const Document doc{static_cast<KeywordId>(rng.NextBounded(4)),
                       static_cast<KeywordId>(4 + rng.NextBounded(4))};
    const ObjectId id = coordinator.Insert(p, doc);
    ASSERT_EQ(reference.Insert(p, doc), id);
    if (step % 9 == 4) {
      coordinator.Delete(id);
      ASSERT_TRUE(reference.Delete(id));
    }
    if (step % 67 != 0) continue;
    // Queries run mid-merge against each shard's snapshot; answers must
    // still be exact because publishes are synchronous with the update.
    Box<2> everywhere;
    everywhere.lo = {{0.0, 0.0}};
    everywhere.hi = {{1.0, 1.0}};
    std::vector<BatchQuery<Box<2>>> batch{
        {everywhere,
         {static_cast<KeywordId>(rng.NextBounded(4)),
          static_cast<KeywordId>(4 + rng.NextBounded(4))}}};
    const auto result = coordinator.Run(batch);
    std::vector<ObjectId> expected =
        testing::Sorted(reference.Query(everywhere, batch[0].keywords));
    if (expected.size() > serve.top_t) expected.resize(serve.top_t);
    ASSERT_EQ(result.rows[0], expected) << "step " << step;
  }
  coordinator.WaitQuiescent();
  for (uint32_t s = 0; s < 3; ++s) {
    testing::ExpectAuditClean(coordinator.replica(s).index());
  }
  EXPECT_GT(registry.CounterValue("serve.updates"), 0u);
  EXPECT_GT(registry.CounterValue("serve.queries"), 0u);
}

TEST(Merge, SelectTopTIsExactOnHandBuiltRows) {
  // Adversarial shapes for the threshold protocol: skewed list sizes, one
  // empty shard, and t across the fallback/threshold boundary.
  const std::vector<ObjectId> a{0, 4, 8, 12, 16, 20, 24, 28, 32, 36,
                                40, 44, 48, 52, 56, 60, 64, 68, 72, 76};
  const std::vector<ObjectId> b{1, 3, 77, 79};
  const std::vector<ObjectId> c{};
  const std::vector<ObjectId> d{2, 90, 91, 92, 93, 94, 95, 96, 97, 98, 99,
                                100, 101, 102, 103, 104, 105, 106, 107, 108};
  const std::vector<const std::vector<ObjectId>*> rows{&a, &b, &c, &d};
  std::vector<ObjectId> all = MergeAllRows(rows);
  ASSERT_TRUE(std::is_sorted(all.begin(), all.end()));
  ASSERT_EQ(all.size(), a.size() + b.size() + d.size());
  for (uint64_t t : {1u, 2u, 7u, 20u, 43u, 44u, 100u}) {
    MergeByteCounters bytes;
    const std::vector<ObjectId> top = SelectTopT(rows, t, &bytes);
    std::vector<ObjectId> expected = all;
    if (expected.size() > t) expected.resize(t);
    EXPECT_EQ(top, expected) << "t=" << t;
    EXPECT_GT(bytes.naive, 0u);
    EXPECT_GE(bytes.selection_rounds, 2u);
  }
}

}  // namespace
}  // namespace kwsc
