// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Focused edge-case coverage across modules: boundary semantics, budget
// behaviour under adversity, degenerate geometry, and invariants the other
// suites touch only incidentally.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/random.h"
#include "common/serialize.h"
#include "core/balanced_cut.h"
#include "core/dim_reduction.h"
#include "core/nn_linf.h"
#include "core/orp_kw.h"
#include "core/sp_kw_hs.h"
#include "geom/polygon2d.h"
#include "geom/rank_space.h"
#include "kdtree/kd_tree.h"
#include "test_util.h"
#include "workload/generator.h"

namespace kwsc {
namespace {

using testing::BruteBox;
using testing::Sorted;

// --- Geometry boundaries ---------------------------------------------

TEST(EdgePolygon, ContainsVertexAndEdgeMidpoint) {
  auto poly = ConvexPolygon2D::FromBox({{{0, 0}}, {{2, 2}}});
  EXPECT_TRUE(poly.Contains({{0, 0}}));    // Vertex.
  EXPECT_TRUE(poly.Contains({{1, 0}}));    // Edge midpoint.
  EXPECT_FALSE(poly.Contains({{-0.001, 0}}));
}

TEST(EdgePolygon, RepeatedClippingStaysStable) {
  // Clip a box by the same halfplane many times; area must be monotone
  // non-increasing and stabilize (no numeric drift blow-up).
  auto poly = ConvexPolygon2D::FromBox({{{0, 0}}, {{1, 1}}});
  const Halfspace<2> h{{{1, 1}}, 1.0};
  double prev = poly.Area();
  for (int i = 0; i < 20; ++i) {
    poly = poly.ClipBy(h);
    const double area = poly.Area();
    EXPECT_LE(area, prev + 1e-12);
    prev = area;
  }
  EXPECT_NEAR(prev, 0.5, 1e-9);
}

TEST(EdgeRankSpace, SingleObject) {
  std::vector<Point<2>> pts = {{{3.5, -2.0}}};
  RankSpace<2> rs{std::span<const Point<2>>(pts)};
  EXPECT_EQ(rs.ToRank(0)[0], 0);
  EXPECT_EQ(rs.ToRank(0)[1], 0);
  auto rq = rs.ToRankBox({{{3.5, -2.0}}, {{3.5, -2.0}}});
  EXPECT_TRUE(rq.Contains(rs.ToRank(0)));
}

TEST(EdgeRankSpace, SaveLoadRoundTrip) {
  Rng rng(4441);
  auto pts = GeneratePoints<2>(100, PointDistribution::kUniform, &rng);
  RankSpace<2> original{std::span<const Point<2>>(pts)};
  std::stringstream stream;
  {
    OutputArchive ar(&stream);
    original.Save(&ar);
  }
  RankSpace<2> loaded;
  {
    InputArchive ar(&stream);
    loaded.Load(&ar);
  }
  for (uint32_t e = 0; e < pts.size(); ++e) {
    EXPECT_EQ(loaded.ToRank(e).coords, original.ToRank(e).coords);
  }
  Box<2> q{{{0.2, 0.2}}, {{0.8, 0.8}}};
  EXPECT_EQ(loaded.ToRankBox(q), original.ToRankBox(q));
}

// --- kd-tree behaviours ----------------------------------------------

TEST(EdgeKdTree, DuplicatePointsAllReported) {
  std::vector<Point<2>> pts(50, Point<2>{{0.5, 0.5}});
  KdTree<2> tree{std::span<const Point<2>>(pts), /*leaf_capacity=*/4};
  std::vector<uint32_t> out;
  tree.RangeReport({{{0.5, 0.5}}, {{0.5, 0.5}}}, &out);
  EXPECT_EQ(out.size(), 50u);
}

TEST(EdgeKdTree, NearestFirstVisitsEveryPointWhenUnbounded) {
  Rng rng(4442);
  auto pts = GeneratePoints<2>(200, PointDistribution::kClustered, &rng);
  KdTree<2> tree{std::span<const Point<2>>(pts)};
  int visited = 0;
  tree.NearestFirst(Point<2>{{0.1, 0.9}}, L2SquaredDistanceFns<2, double>{},
                    [&visited](uint32_t, double) {
                      ++visited;
                      return true;
                    });
  EXPECT_EQ(visited, 200);
}

// --- Balanced cuts ----------------------------------------------------

TEST(EdgeBalancedCut, AllObjectsSameWeightFanoutEqualsCount) {
  Corpus corpus(std::vector<Document>(10, Document{0}));
  std::vector<ObjectId> sorted(10);
  std::iota(sorted.begin(), sorted.end(), 0);
  // Fanout = object count: quota 1, so groups hold one object each.
  const auto cut = ComputeBalancedCut(sorted, corpus, 10);
  size_t covered = cut.separators.size();
  for (const auto& g : cut.groups) covered += g.end - g.begin;
  EXPECT_EQ(covered, 10u);
}

TEST(EdgeBalancedCut, FanoutTwoSplitsByWeight) {
  // Doc sizes 1..6 (total 21, quota 10): first group must stay <= 10.
  std::vector<Document> docs;
  for (int len = 1; len <= 6; ++len) {
    std::vector<KeywordId> kws;
    for (int j = 0; j < len; ++j) kws.push_back(static_cast<KeywordId>(j));
    docs.emplace_back(std::move(kws));
  }
  Corpus corpus(std::move(docs));
  std::vector<ObjectId> sorted = {0, 1, 2, 3, 4, 5};
  const auto cut = ComputeBalancedCut(sorted, corpus, 2);
  ASSERT_FALSE(cut.groups.empty());
  uint64_t w = 0;
  for (uint32_t i = cut.groups[0].begin; i < cut.groups[0].end; ++i) {
    w += corpus.doc(sorted[i]).size();
  }
  EXPECT_LE(w, 21u / 2);
}

// --- Framework budget & stats semantics -------------------------------

TEST(EdgeOrpKw, ZeroBudgetReportsNothingAndFlags) {
  Rng rng(4443);
  CorpusSpec spec;
  spec.num_objects = 200;
  spec.vocab_size = 20;
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<2>(200, PointDistribution::kUniform, &rng);
  FrameworkOptions opt;
  opt.k = 2;
  OrpKwIndex<2> index(pts, &corpus, opt);
  auto kws = PickQueryKeywords(corpus, 2, KeywordPick::kFrequent, &rng);
  QueryStats stats;
  OpsBudget budget(0);
  auto got = index.Query(Box<2>::Everything(), kws, &stats, &budget);
  EXPECT_TRUE(got.empty());
  EXPECT_TRUE(stats.budget_exhausted);
}

TEST(EdgeOrpKw, BudgetMonotonicity) {
  // More budget never yields fewer results.
  Rng rng(4444);
  CorpusSpec spec;
  spec.num_objects = 1000;
  spec.vocab_size = 15;
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<2>(1000, PointDistribution::kUniform, &rng);
  FrameworkOptions opt;
  opt.k = 2;
  OrpKwIndex<2> index(pts, &corpus, opt);
  auto kws = PickQueryKeywords(corpus, 2, KeywordPick::kFrequent, &rng);
  size_t prev = 0;
  for (uint64_t limit : {10u, 100u, 1000u, 100000u}) {
    OpsBudget budget(limit);
    const size_t got =
        index.Query(Box<2>::Everything(), kws, nullptr, &budget).size();
    EXPECT_GE(got, prev);
    prev = got;
  }
}

TEST(EdgeOrpKw, StatsCountersAreConsistent) {
  Rng rng(4445);
  CorpusSpec spec;
  spec.num_objects = 800;
  spec.vocab_size = 60;
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<2>(800, PointDistribution::kClustered, &rng);
  FrameworkOptions opt;
  opt.k = 2;
  OrpKwIndex<2> index(pts, &corpus, opt);
  for (int trial = 0; trial < 10; ++trial) {
    auto q = GenerateBoxQuery(std::span<const Point<2>>(pts),
                              rng.UniformDouble(0.01, 0.5), &rng);
    auto kws = PickQueryKeywords(corpus, 2, KeywordPick::kCooccurring, &rng);
    QueryStats stats;
    auto got = index.Query(q, kws, &stats);
    EXPECT_EQ(stats.results, got.size());
    EXPECT_EQ(stats.covered_nodes + stats.crossing_nodes,
              stats.nodes_visited);
    EXPECT_EQ(stats.covered_work + stats.crossing_work,
              stats.ObjectsExamined());
    EXPECT_FALSE(stats.budget_exhausted);
  }
}

TEST(EdgeOrpKw, EmptinessDeviceOnPlantedDisjointPair) {
  // The adversarial frequent-disjoint instance: Empty() must answer true in
  // O(1)-ish work via the tuple registry.
  const uint32_t n = 4096;
  std::vector<Document> docs;
  std::vector<Point<2>> pts;
  Rng rng(4446);
  for (uint32_t i = 0; i < n; ++i) {
    docs.push_back(Document{static_cast<KeywordId>(i % 2),
                            static_cast<KeywordId>(2 + i % 9)});
    pts.push_back({{rng.NextDouble(), rng.NextDouble()}});
  }
  Corpus corpus(std::move(docs));
  FrameworkOptions opt;
  opt.k = 2;
  OrpKwIndex<2> index(pts, &corpus, opt);
  std::vector<KeywordId> kws = {0, 1};
  QueryStats stats;
  EXPECT_TRUE(index.Empty(Box<2>::Everything(), kws, &stats));
  EXPECT_LE(stats.ObjectsExamined(), 4u);
}

// --- Dimension reduction edges -----------------------------------------

TEST(EdgeDimRed, QueryOutsideXRangeIsFree) {
  Rng rng(4447);
  CorpusSpec spec;
  spec.num_objects = 500;
  spec.vocab_size = 30;
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<3>(500, PointDistribution::kUniform, &rng);
  FrameworkOptions opt;
  opt.k = 2;
  DimRedOrpKwIndex<3> index(pts, &corpus, opt);
  auto kws = PickQueryKeywords(corpus, 2, KeywordPick::kFrequent, &rng);
  Box<3> q{{{5.0, 0, 0}}, {{6.0, 1, 1}}};  // x-range beyond all data.
  QueryStats stats;
  EXPECT_TRUE(index.Query(q, kws, &stats).empty());
  EXPECT_LE(stats.nodes_visited, 1u);
}

TEST(EdgeDimRed, FullXRangeDelegatesToRootSecondary) {
  Rng rng(4448);
  CorpusSpec spec;
  spec.num_objects = 400;
  spec.vocab_size = 30;
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<3>(400, PointDistribution::kUniform, &rng);
  FrameworkOptions opt;
  opt.k = 2;
  DimRedOrpKwIndex<3> index(pts, &corpus, opt);
  auto kws = PickQueryKeywords(corpus, 2, KeywordPick::kCooccurring, &rng);
  Box<3> q = Box<3>::Everything();
  QueryStats stats;
  auto got = index.Query(q, kws, &stats);
  // The root is type-1 for a full x-range: exactly one type-1 node, zero
  // type-2 nodes at the top level.
  EXPECT_EQ(stats.type1_nodes, 1u);
  EXPECT_EQ(stats.type2_nodes, 0u);
  EXPECT_EQ(Sorted(got), BruteBox(std::span<const Point<3>>(pts), corpus, q,
                                  kws));
}

// --- L∞ NN edges -------------------------------------------------------

TEST(EdgeLinfNn, TEqualsAllMatches) {
  Rng rng(4449);
  CorpusSpec spec;
  spec.num_objects = 300;
  spec.vocab_size = 20;
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<2>(300, PointDistribution::kUniform, &rng);
  FrameworkOptions opt;
  opt.k = 2;
  LinfNnIndex<2> index(pts, &corpus, opt);
  auto kws = PickQueryKeywords(corpus, 2, KeywordPick::kFrequent, &rng);
  std::vector<ObjectId> all;
  for (ObjectId e = 0; e < corpus.num_objects(); ++e) {
    if (corpus.ContainsAll(e, kws)) all.push_back(e);
  }
  ASSERT_FALSE(all.empty());
  auto got = index.Query({{0.5, 0.5}}, all.size(), kws);
  EXPECT_EQ(Sorted(got), all);
  // Asking for more than exist returns exactly the matches.
  auto more = index.Query({{0.5, 0.5}}, all.size() + 50, kws);
  EXPECT_EQ(Sorted(more), all);
}

TEST(EdgeLinfNn, QueryFarOutsideDataRange) {
  Corpus corpus({Document{0, 1}, Document{0, 1}});
  std::vector<Point<2>> pts = {{{0, 0}}, {{1, 1}}};
  FrameworkOptions opt;
  opt.k = 2;
  LinfNnIndex<2> index(pts, &corpus, opt);
  std::vector<KeywordId> kws = {0, 1};
  auto got = index.Query({{1000, 1000}}, 1, kws);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], 1u);  // (1,1) is closer to (1000,1000).
}

// --- Partition tree edges ----------------------------------------------

TEST(EdgeSpKwHs, EmptyConstraintSetReturnsAllMatches) {
  // Zero constraints = pure keyword search through the partition tree.
  Rng rng(4450);
  CorpusSpec spec;
  spec.num_objects = 300;
  spec.vocab_size = 25;
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<2>(300, PointDistribution::kUniform, &rng);
  FrameworkOptions opt;
  opt.k = 2;
  SpKwHsIndex index(pts, &corpus, opt);
  auto kws = PickQueryKeywords(corpus, 2, KeywordPick::kCooccurring, &rng);
  ConvexQuery<2> unconstrained;
  std::vector<ObjectId> expected;
  for (ObjectId e = 0; e < corpus.num_objects(); ++e) {
    if (corpus.ContainsAll(e, kws)) expected.push_back(e);
  }
  EXPECT_EQ(Sorted(index.Query(unconstrained, kws)), expected);
}

TEST(EdgeSpKwHs, ContainsAtLeastOnHalfplane) {
  Rng rng(4451);
  CorpusSpec spec;
  spec.num_objects = 500;
  spec.vocab_size = 30;
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<2>(500, PointDistribution::kUniform, &rng);
  FrameworkOptions opt;
  opt.k = 2;
  SpKwHsIndex index(pts, &corpus, opt);
  for (int trial = 0; trial < 8; ++trial) {
    ConvexQuery<2> q;
    q.constraints.push_back(GenerateHalfspaceQuery(
        std::span<const Point<2>>(pts), rng.UniformDouble(0.2, 0.8), &rng));
    auto kws = PickQueryKeywords(corpus, 2, KeywordPick::kFrequent, &rng);
    const size_t truth = index.Query(q, kws).size();
    for (uint64_t t : {1, 3, 12}) {
      EXPECT_EQ(index.ContainsAtLeast(q, kws, t), truth >= t);
    }
  }
}

// --- Corpus / documents -------------------------------------------------

TEST(EdgeCorpus, DefaultConstructedIsEmpty) {
  Corpus corpus;
  EXPECT_EQ(corpus.num_objects(), 0u);
  EXPECT_EQ(corpus.total_weight(), 0u);
  EXPECT_EQ(corpus.vocab_size(), 0u);
}

TEST(EdgeCorpusDeath, EmptyDocumentRejected) {
  EXPECT_DEATH(Corpus({Document{}}), "empty document");
}

TEST(EdgeDocument, SingleKeyword) {
  Document d{42};
  EXPECT_EQ(d.size(), 1u);
  EXPECT_TRUE(d.Contains(42));
  EXPECT_FALSE(d.Contains(41));
}

}  // namespace
}  // namespace kwsc
