// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Unit tests for src/common: PRNG, Zipf sampling, hash containers, operation
// budgets, and memory formatting.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "common/flat_hash.h"
#include "common/memory.h"
#include "common/ops_budget.h"
#include "common/random.h"
#include "common/zipf.h"

namespace kwsc {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 4);
}

TEST(Rng, NextBoundedInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.NextBounded(bound), bound);
  }
}

TEST(Rng, NextBoundedCoversAllValues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntInclusiveEndpoints) {
  Rng rng(13);
  bool lo_seen = false;
  bool hi_seen = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    lo_seen |= (v == -3);
    hi_seen |= (v == 3);
  }
  EXPECT_TRUE(lo_seen);
  EXPECT_TRUE(hi_seen);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(17);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, GaussianMoments) {
  Rng rng(19);
  double sum = 0;
  double sum_sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.NextGaussian();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(Mix64, InjectiveOnSmallRange) {
  std::set<uint64_t> seen;
  for (uint64_t i = 0; i < 4096; ++i) seen.insert(Mix64(i));
  EXPECT_EQ(seen.size(), 4096u);
}

TEST(Zipf, ProbabilitiesSumToOne) {
  ZipfSampler zipf(100, 1.0);
  double total = 0;
  for (uint64_t i = 0; i < 100; ++i) total += zipf.Probability(i);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Zipf, SkewOrdersProbabilities) {
  ZipfSampler zipf(50, 1.2);
  for (uint64_t i = 1; i < 50; ++i) {
    EXPECT_GT(zipf.Probability(i - 1), zipf.Probability(i));
  }
}

TEST(Zipf, ZeroSkewIsUniform) {
  ZipfSampler zipf(10, 0.0);
  for (uint64_t i = 0; i < 10; ++i) {
    EXPECT_NEAR(zipf.Probability(i), 0.1, 1e-9);
  }
}

TEST(Zipf, EmpiricalFrequencyMatchesProbability) {
  ZipfSampler zipf(20, 1.0);
  Rng rng(23);
  std::vector<int> counts(20, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Sample(&rng)];
  for (uint64_t i = 0; i < 20; ++i) {
    EXPECT_NEAR(static_cast<double>(counts[i]) / n, zipf.Probability(i), 0.01);
  }
}

TEST(FlatHashMap, InsertFindRoundTrip) {
  FlatHashMap<uint64_t, int> map;
  for (uint64_t i = 0; i < 1000; ++i) map[i * 7919] = static_cast<int>(i);
  EXPECT_EQ(map.size(), 1000u);
  for (uint64_t i = 0; i < 1000; ++i) {
    const int* v = map.Find(i * 7919);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, static_cast<int>(i));
  }
  EXPECT_EQ(map.Find(1), nullptr);
}

TEST(FlatHashMap, MatchesUnorderedMapUnderRandomOps) {
  FlatHashMap<uint32_t, uint32_t> map;
  std::unordered_map<uint32_t, uint32_t> ref;
  Rng rng(29);
  for (int i = 0; i < 20000; ++i) {
    uint32_t key = static_cast<uint32_t>(rng.NextBounded(3000));
    uint32_t value = static_cast<uint32_t>(rng.Next());
    map[key] = value;
    ref[key] = value;
  }
  EXPECT_EQ(map.size(), ref.size());
  for (const auto& [k, v] : ref) {
    const uint32_t* found = map.Find(k);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(*found, v);
  }
}

TEST(FlatHashMap, ClearKeepsCapacityAndEmpties) {
  FlatHashMap<uint32_t, int> map;
  for (uint32_t i = 0; i < 100; ++i) map[i] = 1;
  map.Clear();
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.Find(5), nullptr);
  map[3] = 7;
  EXPECT_EQ(*map.Find(3), 7);
}

TEST(FlatHashMap, ForEachVisitsEverything) {
  FlatHashMap<uint32_t, uint32_t> map;
  for (uint32_t i = 0; i < 257; ++i) map[i] = i * 2;
  uint64_t key_sum = 0;
  uint64_t value_sum = 0;
  map.ForEach([&](uint32_t k, uint32_t v) {
    key_sum += k;
    value_sum += v;
  });
  EXPECT_EQ(key_sum, 257u * 256u / 2);
  EXPECT_EQ(value_sum, 257u * 256u);
}

TEST(FlatHashSet, InsertContains) {
  FlatHashSet<uint64_t> set;
  EXPECT_TRUE(set.Insert(10));
  EXPECT_FALSE(set.Insert(10));
  EXPECT_TRUE(set.Contains(10));
  EXPECT_FALSE(set.Contains(11));
  EXPECT_EQ(set.size(), 1u);
}

TEST(FlatHashSet, MatchesUnorderedSet) {
  FlatHashSet<uint64_t> set;
  std::unordered_set<uint64_t> ref;
  Rng rng(31);
  for (int i = 0; i < 10000; ++i) {
    uint64_t v = rng.NextBounded(4000);
    EXPECT_EQ(set.Insert(v), ref.insert(v).second);
  }
  EXPECT_EQ(set.size(), ref.size());
  for (uint64_t v = 0; v < 4000; ++v) {
    EXPECT_EQ(set.Contains(v), ref.count(v) > 0);
  }
}

TEST(OpsBudget, UnlimitedByDefault) {
  OpsBudget budget;
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(budget.Charge(1000000));
  EXPECT_FALSE(budget.Exhausted());
}

TEST(OpsBudget, ExhaustsAtLimit) {
  OpsBudget budget(10);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(budget.Charge());
  EXPECT_FALSE(budget.Charge());
  EXPECT_TRUE(budget.Exhausted());
  EXPECT_EQ(budget.spent(), 11u);
}

TEST(OpsBudget, BulkCharge) {
  OpsBudget budget(100);
  EXPECT_TRUE(budget.Charge(100));
  EXPECT_FALSE(budget.Charge(1));
}

// Regression: Charge used a plain add, so charging near uint64_t max
// wrapped spent_ around to a small value and silently un-exhausted the
// budget. The add must saturate.
TEST(OpsBudget, ChargeSaturatesInsteadOfWrapping) {
  constexpr uint64_t kMax = std::numeric_limits<uint64_t>::max();
  OpsBudget budget(100);
  EXPECT_TRUE(budget.Charge(100));
  EXPECT_FALSE(budget.Charge(kMax));  // Would wrap; must saturate.
  EXPECT_TRUE(budget.Exhausted());
  EXPECT_EQ(budget.spent(), kMax);
  EXPECT_FALSE(budget.Charge(kMax));  // Stays pinned at the ceiling.
  EXPECT_TRUE(budget.Exhausted());
  EXPECT_EQ(budget.spent(), kMax);
}

TEST(OpsBudget, UnlimitedBudgetNeverExhaustsEvenSaturated) {
  OpsBudget budget;  // limit == uint64_t max.
  EXPECT_TRUE(budget.Charge(std::numeric_limits<uint64_t>::max()));
  EXPECT_TRUE(budget.Charge(std::numeric_limits<uint64_t>::max()));
  EXPECT_FALSE(budget.Exhausted());
}

TEST(FormatBytes, HumanReadable) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(2048), "2.00 KiB");
  EXPECT_EQ(FormatBytes(3 * 1024 * 1024), "3.00 MiB");
}

TEST(VectorBytes, CountsCapacity) {
  std::vector<int> v;
  v.reserve(100);
  EXPECT_EQ(VectorBytes(v), 100 * sizeof(int));
}

TEST(PeakRssBytes, ReportsProcessHighWaterMarkOnLinux) {
#if defined(__linux__)
  const size_t peak = PeakRssBytes();
  EXPECT_GT(peak, 0u);
  // Touching a real allocation cannot lower the high-water mark.
  std::vector<char> block(1 << 20, 1);
  EXPECT_GE(PeakRssBytes() + (1 << 20), peak);
#else
  SUCCEED();
#endif
}

}  // namespace
}  // namespace kwsc
