// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.

#include <gtest/gtest.h>

#include "core/orp_kw.h"
#include "text/corpus.h"

namespace kwsc {
namespace {

TEST(Smoke, BuildAndQuery) {
  std::vector<Document> docs = {{0, 1}, {0, 2}, {1, 2}, {0, 1, 2}};
  Corpus corpus(std::move(docs));
  std::vector<Point<2>> pts = {{{0, 0}}, {{1, 1}}, {{2, 2}}, {{3, 3}}};
  FrameworkOptions opt;
  opt.k = 2;
  OrpKwIndex<2> index(pts, &corpus, opt);
  Box<2> q{{{0.5, 0.5}}, {{3.5, 3.5}}};
  std::vector<KeywordId> kws = {0, 1};
  auto result = index.Query(q, kws);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0], 3u);
}

}  // namespace
}  // namespace kwsc

#include "core/dim_reduction.h"

namespace kwsc {
namespace {

TEST(Smoke, DimRed3D) {
  std::vector<Document> docs;
  std::vector<Point<3>> pts;
  for (int i = 0; i < 200; ++i) {
    docs.push_back(Document{static_cast<KeywordId>(i % 5),
                            static_cast<KeywordId>(5 + i % 3)});
    pts.push_back({{i * 1.0, (i * 37 % 200) * 1.0, (i * 53 % 200) * 1.0}});
  }
  Corpus corpus(std::move(docs));
  FrameworkOptions opt;
  opt.k = 2;
  DimRedOrpKwIndex<3> index(pts, &corpus, opt);
  Box<3> q{{{0, 0, 0}}, {{199, 199, 199}}};
  std::vector<KeywordId> kws = {0, 5};
  auto result = index.Query(q, kws);
  // Brute force.
  size_t expected = 0;
  for (int i = 0; i < 200; ++i) {
    if (i % 5 == 0 && 5 + i % 3 == 5) ++expected;
  }
  EXPECT_EQ(result.size(), expected);
}

}  // namespace
}  // namespace kwsc
