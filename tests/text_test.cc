// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Unit tests for src/text: documents, the corpus, and the inverted index.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "text/corpus.h"
#include "text/document.h"
#include "text/inverted_index.h"

namespace kwsc {
namespace {

TEST(Document, SortsAndDeduplicates) {
  Document d({5, 1, 3, 1, 5});
  EXPECT_EQ(d.keywords(), (std::vector<KeywordId>{1, 3, 5}));
  EXPECT_EQ(d.size(), 3u);
}

TEST(Document, Contains) {
  Document d({2, 4, 8});
  EXPECT_TRUE(d.Contains(2));
  EXPECT_TRUE(d.Contains(8));
  EXPECT_FALSE(d.Contains(3));
  EXPECT_FALSE(d.Contains(0));
}

TEST(Document, ContainsAll) {
  Document d({1, 2, 3, 4});
  KeywordId all[] = {1, 3};
  KeywordId miss[] = {1, 9};
  EXPECT_TRUE(d.ContainsAll(all, 2));
  EXPECT_FALSE(d.ContainsAll(miss, 2));
  EXPECT_TRUE(d.ContainsAll(nullptr, 0));
}

TEST(Corpus, TotalWeightIsEquationTwo) {
  // N = sum of |e.Doc| over all objects (Eq. (2) of the paper).
  Corpus corpus({Document{1, 2}, Document{3}, Document{1, 2, 3, 4}});
  EXPECT_EQ(corpus.total_weight(), 7u);
  EXPECT_EQ(corpus.num_objects(), 3u);
  EXPECT_EQ(corpus.vocab_size(), 5u);
}

TEST(Corpus, ContainsMatchesDocument) {
  Corpus corpus({Document{1, 5}, Document{2}});
  EXPECT_TRUE(corpus.Contains(0, 1));
  EXPECT_TRUE(corpus.Contains(0, 5));
  EXPECT_FALSE(corpus.Contains(0, 2));
  EXPECT_TRUE(corpus.Contains(1, 2));
}

TEST(Corpus, ContainsAllSpan) {
  Corpus corpus({Document{1, 2, 3}});
  std::vector<KeywordId> yes = {1, 3};
  std::vector<KeywordId> no = {1, 4};
  EXPECT_TRUE(corpus.ContainsAll(0, yes));
  EXPECT_FALSE(corpus.ContainsAll(0, no));
}

TEST(Corpus, LongDocumentsUseHashedPath) {
  // Documents of >= 32 keywords go through the hash-set membership path
  // (footnote 9's perfect hash table); verify it agrees with binary search.
  std::vector<KeywordId> long_doc;
  for (KeywordId w = 0; w < 100; w += 2) long_doc.push_back(w);
  Corpus corpus({Document(long_doc)});
  for (KeywordId w = 0; w < 100; ++w) {
    EXPECT_EQ(corpus.Contains(0, w), w % 2 == 0) << w;
  }
}

TEST(InvertedIndex, PostingsAreSortedAndComplete) {
  Corpus corpus({Document{0, 1}, Document{1}, Document{0, 2}});
  InvertedIndex index(corpus);
  EXPECT_EQ(index.Postings(0).size(), 2u);
  EXPECT_EQ(index.Postings(1).size(), 2u);
  EXPECT_EQ(index.Postings(2).size(), 1u);
  for (KeywordId w = 0; w < 3; ++w) {
    auto list = index.Postings(w);
    EXPECT_TRUE(std::is_sorted(list.begin(), list.end()));
  }
}

TEST(InvertedIndex, PostingsOutOfVocabEmpty) {
  Corpus corpus({Document{0}});
  InvertedIndex index(corpus);
  EXPECT_TRUE(index.Postings(99).empty());
}

TEST(InvertedIndex, IntersectPair) {
  Corpus corpus({Document{0, 1}, Document{0}, Document{0, 1, 2}});
  InvertedIndex index(corpus);
  std::vector<KeywordId> q = {0, 1};
  EXPECT_EQ(index.Intersect(q), (std::vector<ObjectId>{0, 2}));
}

TEST(InvertedIndex, IntersectWithAbsentKeywordIsEmpty) {
  Corpus corpus({Document{0, 1}});
  InvertedIndex index(corpus);
  std::vector<KeywordId> q = {0, 7};
  EXPECT_TRUE(index.Intersect(q).empty());
  EXPECT_TRUE(index.IntersectionEmpty(q));
}

TEST(InvertedIndex, EmptinessEarlyExit) {
  Corpus corpus({Document{0, 1}, Document{0, 1}});
  InvertedIndex index(corpus);
  std::vector<KeywordId> q = {0, 1};
  EXPECT_FALSE(index.IntersectionEmpty(q));
}

TEST(InvertedIndex, IntersectMatchesBruteForceRandomized) {
  Rng rng(1234);
  for (int trial = 0; trial < 20; ++trial) {
    // Random corpus of 200 objects over 12 keywords.
    std::vector<Document> docs;
    for (int i = 0; i < 200; ++i) {
      std::vector<KeywordId> kws;
      for (KeywordId w = 0; w < 12; ++w) {
        if (rng.NextBool(0.3)) kws.push_back(w);
      }
      if (kws.empty()) kws.push_back(static_cast<KeywordId>(rng.NextBounded(12)));
      docs.emplace_back(std::move(kws));
    }
    Corpus corpus(std::move(docs));
    InvertedIndex index(corpus);
    for (int k : {2, 3, 4}) {
      std::vector<KeywordId> q;
      while (q.size() < static_cast<size_t>(k)) {
        KeywordId w = static_cast<KeywordId>(rng.NextBounded(12));
        if (std::find(q.begin(), q.end(), w) == q.end()) q.push_back(w);
      }
      std::vector<ObjectId> expected;
      for (ObjectId e = 0; e < corpus.num_objects(); ++e) {
        if (corpus.ContainsAll(e, q)) expected.push_back(e);
      }
      EXPECT_EQ(index.Intersect(q), expected);
      EXPECT_EQ(index.IntersectionEmpty(q), expected.empty());
    }
  }
}

TEST(InvertedIndex, DuplicateQueryKeywordsTolerated) {
  Corpus corpus({Document{0, 1}, Document{0}});
  InvertedIndex index(corpus);
  std::vector<KeywordId> q = {0, 0};
  EXPECT_EQ(index.Intersect(q), (std::vector<ObjectId>{0, 1}));
}

}  // namespace
}  // namespace kwsc
