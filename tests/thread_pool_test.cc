// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// ThreadPool / TaskGroup contract tests: every submitted task runs exactly
// once, Wait() joins, nested fork/join on one shared pool does not deadlock,
// and a null pool degrades to inline execution. Run under TSan (preset
// `tsan`) to check the synchronization mechanically.

#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace kwsc {
namespace {

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_workers(), 3);
  EXPECT_EQ(pool.parallelism(), 4);

  constexpr int kTasks = 1000;
  std::vector<std::atomic<int>> runs(kTasks);
  {
    TaskGroup group(&pool);
    for (int i = 0; i < kTasks; ++i) {
      group.Run([&runs, i] { runs[i].fetch_add(1); });
    }
    group.Wait();
  }
  for (int i = 0; i < kTasks; ++i) {
    ASSERT_EQ(runs[i].load(), 1) << "task " << i;
  }
}

TEST(ThreadPool, WaitJoinsBeforeResultsAreRead) {
  ThreadPool pool(4);
  constexpr int kSlots = 256;
  // Each task writes its own slot — exactly the pattern the parallel index
  // build and the batched query engine rely on: disjoint writes joined by
  // Wait(), no other synchronization.
  std::vector<int> slots(kSlots, 0);
  TaskGroup group(&pool);
  for (int i = 0; i < kSlots; ++i) {
    group.Run([&slots, i] { slots[i] = i * i; });
  }
  group.Wait();
  for (int i = 0; i < kSlots; ++i) ASSERT_EQ(slots[i], i * i);
}

TEST(ThreadPool, NestedGroupsDoNotDeadlock) {
  // More outstanding waits than workers: only the helping in
  // TaskGroup::Wait keeps this from deadlocking.
  ThreadPool pool(2);
  std::atomic<int> leaves{0};
  std::function<void(int)> fork = [&](int depth) {
    if (depth == 0) {
      leaves.fetch_add(1);
      return;
    }
    TaskGroup group(&pool);
    group.Run([&fork, depth] { fork(depth - 1); });
    group.Run([&fork, depth] { fork(depth - 1); });
    group.Wait();
  };
  fork(6);
  EXPECT_EQ(leaves.load(), 64);
}

TEST(ThreadPool, NullPoolRunsInline) {
  int runs = 0;
  TaskGroup group(nullptr);
  group.Run([&runs] { ++runs; });
  EXPECT_EQ(runs, 1);  // Executed synchronously, before Wait.
  group.Wait();
  EXPECT_EQ(runs, 1);
}

TEST(ThreadPool, GroupDestructorWaits) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  {
    TaskGroup group(&pool);
    for (int i = 0; i < 32; ++i) {
      group.Run([&done] { done.fetch_add(1); });
    }
    // No explicit Wait: the destructor must join.
  }
  EXPECT_EQ(done.load(), 32);
}

TEST(ThreadPool, ResolveNumThreads) {
  EXPECT_EQ(ResolveNumThreads(1), 1);
  EXPECT_EQ(ResolveNumThreads(7), 7);
  EXPECT_GE(ResolveNumThreads(0), 1);  // Hardware concurrency, at least 1.
}

}  // namespace
}  // namespace kwsc
