// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Tests for the extension surfaces: simplex query construction (SP-KW's
// literal query form), the Appendix-G doubling reduction, the approximate-L2
// reading of Corollary 4, and the emptiness/count entry points.

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "core/appendix_g.h"
#include "core/nn_l2_approx.h"
#include "core/orp_kw.h"
#include "core/sp_kw_hs.h"
#include "geom/simplex.h"
#include "test_util.h"
#include "workload/generator.h"

namespace kwsc {
namespace {

using testing::BruteBox;
using testing::Sorted;

TEST(Simplex, TriangleMembershipMatchesBarycentricSampling) {
  Rng rng(808);
  for (int trial = 0; trial < 100; ++trial) {
    Point<2> a{{rng.UniformDouble(-5, 5), rng.UniformDouble(-5, 5)}};
    Point<2> b{{rng.UniformDouble(-5, 5), rng.UniformDouble(-5, 5)}};
    Point<2> c{{rng.UniformDouble(-5, 5), rng.UniformDouble(-5, 5)}};
    const double area2 =
        (b[0] - a[0]) * (c[1] - a[1]) - (b[1] - a[1]) * (c[0] - a[0]);
    if (std::fabs(area2) < 1e-6) continue;
    auto q = TriangleQuery(a, b, c);
    ASSERT_EQ(q.constraints.size(), 3u);
    // Points sampled inside by convex combination must satisfy; the
    // reflection of the centroid through a vertex must not.
    for (int s = 0; s < 10; ++s) {
      double u = rng.NextDouble();
      double v = rng.UniformDouble(0, 1 - u);
      double w = 1 - u - v;
      Point<2> inside{{u * a[0] + v * b[0] + w * c[0],
                       u * a[1] + v * b[1] + w * c[1]}};
      EXPECT_TRUE(q.Satisfies(inside));
    }
    Point<2> centroid{{(a[0] + b[0] + c[0]) / 3, (a[1] + b[1] + c[1]) / 3}};
    Point<2> outside{{2 * a[0] - centroid[0], 2 * a[1] - centroid[1]}};
    EXPECT_FALSE(q.Satisfies(outside));
  }
}

TEST(Simplex, TriangleOrientationIrrelevant) {
  Point<2> a{{0, 0}};
  Point<2> b{{1, 0}};
  Point<2> c{{0, 1}};
  auto ccw = TriangleQuery(a, b, c);
  auto cw = TriangleQuery(a, c, b);
  Point<2> inside{{0.25, 0.25}};
  EXPECT_TRUE(ccw.Satisfies(inside));
  EXPECT_TRUE(cw.Satisfies(inside));
}

TEST(SimplexDeath, DegenerateTriangleRejected) {
  Point<2> a{{0, 0}};
  Point<2> b{{1, 1}};
  Point<2> c{{2, 2}};
  EXPECT_DEATH(TriangleQuery(a, b, c), "degenerate");
}

TEST(Simplex, TetrahedronMembership) {
  Rng rng(809);
  Point<3> a{{0, 0, 0}};
  Point<3> b{{1, 0, 0}};
  Point<3> c{{0, 1, 0}};
  Point<3> d{{0, 0, 1}};
  auto q = TetrahedronQuery(a, b, c, d);
  ASSERT_EQ(q.constraints.size(), 4u);
  // Convex combinations are inside.
  for (int s = 0; s < 50; ++s) {
    double w[4];
    double total = 0;
    for (double& x : w) total += (x = rng.NextDouble() + 1e-3);
    Point<3> p{{}};
    const Point<3>* v[4] = {&a, &b, &c, &d};
    for (int i = 0; i < 4; ++i) {
      for (int dim = 0; dim < 3; ++dim) p[dim] += (w[i] / total) * (*v[i])[dim];
    }
    EXPECT_TRUE(q.Satisfies(p));
  }
  EXPECT_FALSE(q.Satisfies({{1, 1, 1}}));
  EXPECT_FALSE(q.Satisfies({{-0.1, 0.2, 0.2}}));
  // All four vertices are on the boundary (satisfy with equality).
  EXPECT_TRUE(q.Satisfies(a));
  EXPECT_TRUE(q.Satisfies(d));
}

TEST(Simplex, TriangleQueryThroughSpKwIndex) {
  Rng rng(810);
  CorpusSpec spec;
  spec.num_objects = 500;
  spec.vocab_size = 40;
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<2>(500, PointDistribution::kUniform, &rng);
  FrameworkOptions opt;
  opt.k = 2;
  SpKwHsIndex index(pts, &corpus, opt);
  for (int trial = 0; trial < 10; ++trial) {
    const auto q = TriangleQuery(
        {{rng.NextDouble(), rng.NextDouble()}},
        {{rng.NextDouble(), rng.NextDouble()}},
        {{rng.NextDouble(), rng.NextDouble()}});
    auto kws = PickQueryKeywords(corpus, 2, KeywordPick::kCooccurring, &rng);
    EXPECT_EQ(Sorted(index.Query(q, kws)),
              testing::BruteConvex(std::span<const Point<2>>(pts), corpus, q,
                                   kws));
  }
}

TEST(AppendixG, DoublingReportsWholeIntersection) {
  Rng rng(811);
  CorpusSpec spec;
  spec.num_objects = 600;
  spec.vocab_size = 30;
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<2>(600, PointDistribution::kUniform, &rng);
  FrameworkOptions opt;
  opt.k = 2;
  LinfNnIndex<2> nn(pts, &corpus, opt);
  for (int trial = 0; trial < 10; ++trial) {
    auto kws = PickQueryKeywords(
        corpus, 2,
        trial % 2 == 0 ? KeywordPick::kFrequent : KeywordPick::kUniform, &rng);
    int rounds = 0;
    auto got = ReportViaNnDoubling(nn, Point<2>{{0.5, 0.5}}, kws, &rounds);
    std::vector<ObjectId> expected;
    for (ObjectId e = 0; e < corpus.num_objects(); ++e) {
      if (corpus.ContainsAll(e, kws)) expected.push_back(e);
    }
    EXPECT_EQ(Sorted(got), expected);
    // Theta(log(1 + OUT)) rounds: t doubles from 1 past OUT.
    const int expected_rounds =
        static_cast<int>(std::log2(std::max<size_t>(expected.size(), 1))) + 2;
    EXPECT_LE(rounds, expected_rounds + 1);
  }
}

TEST(AppendixG, EmptyIntersectionStopsAfterOneRound) {
  Corpus corpus({Document{0}, Document{1}});
  std::vector<Point<2>> pts = {{{0, 0}}, {{1, 1}}};
  FrameworkOptions opt;
  opt.k = 2;
  LinfNnIndex<2> nn(pts, &corpus, opt);
  std::vector<KeywordId> kws = {0, 1};
  int rounds = 0;
  auto got = ReportViaNnDoubling(nn, Point<2>{{0, 0}}, kws, &rounds);
  EXPECT_TRUE(got.empty());
  EXPECT_EQ(rounds, 1);
}

TEST(ApproxL2Nn, WithinSqrtDOfExact) {
  Rng rng(812);
  CorpusSpec spec;
  spec.num_objects = 800;
  spec.vocab_size = 40;
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<2>(800, PointDistribution::kClustered, &rng);
  FrameworkOptions opt;
  opt.k = 2;
  ApproxL2NnIndex<2> approx(pts, &corpus, opt);
  auto l2 = [](const Point<2>& a, const Point<2>& b) {
    return std::sqrt(L2DistanceSquared(a, b));
  };
  for (int trial = 0; trial < 15; ++trial) {
    Point<2> q{{rng.NextDouble(), rng.NextDouble()}};
    auto kws = PickQueryKeywords(corpus, 2, KeywordPick::kFrequent, &rng);
    const uint64_t t = 1 + rng.NextBounded(8);
    auto got = approx.Query(q, t, kws);
    auto exact = testing::BruteNearest(std::span<const Point<2>>(pts), corpus,
                                       q, t, kws, l2);
    ASSERT_EQ(got.size(), exact.size());
    if (exact.empty()) continue;
    const double r_exact = l2(pts[exact.back()], q);
    for (ObjectId e : got) {
      EXPECT_LE(l2(pts[e], q), std::sqrt(2.0) * r_exact + 1e-12);
    }
  }
}

TEST(OrpKw, EmptyQueryDevice) {
  Rng rng(813);
  CorpusSpec spec;
  spec.num_objects = 1000;
  spec.vocab_size = 40;
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<2>(1000, PointDistribution::kUniform, &rng);
  FrameworkOptions opt;
  opt.k = 2;
  OrpKwIndex<2> index(pts, &corpus, opt);
  for (int trial = 0; trial < 20; ++trial) {
    auto q = GenerateBoxQuery(std::span<const Point<2>>(pts),
                              rng.UniformDouble(0.001, 0.5), &rng);
    auto kws = PickQueryKeywords(
        corpus, 2,
        trial % 2 == 0 ? KeywordPick::kFrequent : KeywordPick::kUniform, &rng);
    const bool truly_empty =
        BruteBox(std::span<const Point<2>>(pts), corpus, q, kws).empty();
    EXPECT_EQ(index.Empty(q, kws), truly_empty) << "trial " << trial;
  }
}

TEST(OrpKw, CountMatchesQuerySize) {
  Rng rng(814);
  CorpusSpec spec;
  spec.num_objects = 500;
  spec.vocab_size = 30;
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<2>(500, PointDistribution::kUniform, &rng);
  FrameworkOptions opt;
  opt.k = 2;
  OrpKwIndex<2> index(pts, &corpus, opt);
  for (int trial = 0; trial < 10; ++trial) {
    auto q = GenerateBoxQuery(std::span<const Point<2>>(pts), 0.3, &rng);
    auto kws = PickQueryKeywords(corpus, 2, KeywordPick::kCooccurring, &rng);
    EXPECT_EQ(index.Count(q, kws), index.Query(q, kws).size());
  }
}

}  // namespace
}  // namespace kwsc
