// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Shared test helpers: brute-force reference implementations of every query
// the library answers. Each index test compares against these oracles over
// randomized inputs.

#ifndef KWSC_TESTS_TEST_UTIL_H_
#define KWSC_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <span>
#include <vector>

#include "audit/audit.h"
#include "audit/index_auditor.h"
#include "geom/box.h"
#include "geom/halfspace.h"
#include "geom/point.h"
#include "gtest/gtest.h"
#include "text/corpus.h"

namespace kwsc {
namespace testing {

/// Runs the paper-invariant auditor over a built index and fails the test
/// with the full violation report when any check fires. Gated on
/// audit::AuditEnabled() (the KWSC_AUDIT compile definition or environment
/// variable) so the default build keeps its test runtime; the asan preset
/// and CI enable it everywhere.
template <typename Index>
void ExpectAuditClean(const Index& index) {
  if (!audit::AuditEnabled()) return;
  const audit::AuditReport report = audit::AuditIndex(index);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

/// Substrate variants (kd-tree / interval tree have their own entry points).
template <int D, typename Scalar>
void ExpectAuditClean(const KdTree<D, Scalar>& tree) {
  if (!audit::AuditEnabled()) return;
  const audit::AuditReport report = audit::AuditKdTree(tree);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

template <typename Scalar>
void ExpectAuditClean(const IntervalTree<Scalar>& tree) {
  if (!audit::AuditEnabled()) return;
  const audit::AuditReport report = audit::AuditIntervalTree(tree);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

/// Objects in `q` whose documents contain all keywords, ascending by id.
template <int D, typename Scalar>
std::vector<ObjectId> BruteBox(std::span<const Point<D, Scalar>> points,
                               const Corpus& corpus, const Box<D, Scalar>& q,
                               std::span<const KeywordId> keywords) {
  std::vector<ObjectId> out;
  for (ObjectId e = 0; e < points.size(); ++e) {
    if (q.Contains(points[e]) && corpus.ContainsAll(e, keywords)) {
      out.push_back(e);
    }
  }
  return out;
}

template <int D, typename Scalar>
std::vector<ObjectId> BruteConvex(std::span<const Point<D, Scalar>> points,
                                  const Corpus& corpus,
                                  const ConvexQuery<D, Scalar>& q,
                                  std::span<const KeywordId> keywords) {
  std::vector<ObjectId> out;
  for (ObjectId e = 0; e < points.size(); ++e) {
    if (q.Satisfies(points[e]) && corpus.ContainsAll(e, keywords)) {
      out.push_back(e);
    }
  }
  return out;
}

template <int D, typename Scalar>
std::vector<ObjectId> BruteBall(std::span<const Point<D, Scalar>> points,
                                const Corpus& corpus,
                                const Point<D, Scalar>& center,
                                double radius_sq,
                                std::span<const KeywordId> keywords) {
  std::vector<ObjectId> out;
  for (ObjectId e = 0; e < points.size(); ++e) {
    if (static_cast<double>(L2DistanceSquared(points[e], center)) <=
            radius_sq &&
        corpus.ContainsAll(e, keywords)) {
      out.push_back(e);
    }
  }
  return out;
}

template <int D, typename Scalar>
std::vector<ObjectId> BruteRects(std::span<const Box<D, Scalar>> rects,
                                 const Corpus& corpus,
                                 const Box<D, Scalar>& q,
                                 std::span<const KeywordId> keywords) {
  std::vector<ObjectId> out;
  for (ObjectId e = 0; e < rects.size(); ++e) {
    if (rects[e].Intersects(q) && corpus.ContainsAll(e, keywords)) {
      out.push_back(e);
    }
  }
  return out;
}

/// t nearest matches by `distance` (ties by id), the oracle for both NN
/// problems.
template <int D, typename Scalar, typename DistanceFn>
std::vector<ObjectId> BruteNearest(std::span<const Point<D, Scalar>> points,
                                   const Corpus& corpus,
                                   const Point<D, Scalar>& q, uint64_t t,
                                   std::span<const KeywordId> keywords,
                                   DistanceFn&& distance) {
  std::vector<ObjectId> matches;
  for (ObjectId e = 0; e < points.size(); ++e) {
    if (corpus.ContainsAll(e, keywords)) matches.push_back(e);
  }
  std::sort(matches.begin(), matches.end(), [&](ObjectId a, ObjectId b) {
    const auto da = distance(points[a], q);
    const auto db = distance(points[b], q);
    if (da != db) return da < db;
    return a < b;
  });
  if (matches.size() > t) matches.resize(t);
  return matches;
}

/// Sorted copy (indexes may emit in tree order; oracles emit by id).
inline std::vector<ObjectId> Sorted(std::vector<ObjectId> v) {
  std::sort(v.begin(), v.end());
  return v;
}

/// Distance multisets are compared instead of ids when ties at the t-th
/// distance make the id set ambiguous.
template <int D, typename Scalar, typename DistanceFn>
std::vector<double> DistanceProfile(std::span<const Point<D, Scalar>> points,
                                    const Point<D, Scalar>& q,
                                    std::span<const ObjectId> ids,
                                    DistanceFn&& distance) {
  std::vector<double> out;
  out.reserve(ids.size());
  for (ObjectId e : ids) {
    out.push_back(static_cast<double>(distance(points[e], q)));
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace testing
}  // namespace kwsc

#endif  // KWSC_TESTS_TEST_UTIL_H_
