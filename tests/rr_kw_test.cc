// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Tests for RR-KW (Corollary 3): rectangle intersection with keywords via
// the dominance lift to 2d-dimensional points.

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/rr_kw.h"
#include "test_util.h"
#include "workload/generator.h"

namespace kwsc {
namespace {

using testing::BruteRects;
using testing::Sorted;

TEST(RrKw, LiftQueryDominanceEquivalence) {
  // Property: rect-intersects-rect iff lifted point in lifted box.
  Rng rng(101);
  for (int trial = 0; trial < 500; ++trial) {
    Box<2> data;
    Box<2> query;
    for (int dim = 0; dim < 2; ++dim) {
      double a = rng.UniformDouble(0, 1), b = rng.UniformDouble(0, 1);
      data.lo[dim] = std::min(a, b);
      data.hi[dim] = std::max(a, b);
      a = rng.UniformDouble(0, 1);
      b = rng.UniformDouble(0, 1);
      query.lo[dim] = std::min(a, b);
      query.hi[dim] = std::max(a, b);
    }
    Point<4> lifted{{data.lo[0], data.hi[0], data.lo[1], data.hi[1]}};
    EXPECT_EQ(RrKwIndex<2>::LiftQuery(query).Contains(lifted),
              data.Intersects(query));
  }
}

struct RrParam {
  uint32_t n;
  int k;
  double mean_extent;
};

class RrKw1DTest : public ::testing::TestWithParam<RrParam> {};

TEST_P(RrKw1DTest, TemporalIntervalsMatchBruteForce) {
  // d = 1: keyword search on temporal documents (lifespan intervals [7]).
  const auto p = GetParam();
  Rng rng(3000 + p.n + p.k);
  CorpusSpec spec;
  spec.num_objects = p.n;
  spec.vocab_size = std::max<uint32_t>(20, p.n / 15);
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto rects = GenerateRects<1>(p.n, PointDistribution::kUniform,
                                p.mean_extent, &rng);
  FrameworkOptions opt;
  opt.k = p.k;
  RrKwIndex<1> index(rects, &corpus, opt);
  testing::ExpectAuditClean(index);
  for (int trial = 0; trial < 10; ++trial) {
    Box<1> q;
    const double center = rng.NextDouble();
    const double half = rng.UniformDouble(0.01, 0.2);
    q.lo[0] = center - half;
    q.hi[0] = center + half;
    auto kws = PickQueryKeywords(
        corpus, p.k,
        trial % 2 == 0 ? KeywordPick::kFrequent : KeywordPick::kCooccurring,
        &rng);
    auto got = index.Query(q, kws);
    EXPECT_EQ(Sorted(got),
              BruteRects(std::span<const Box<1>>(rects), corpus, q, kws));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RrKw1DTest,
                         ::testing::Values(RrParam{100, 2, 0.1},
                                           RrParam{500, 2, 0.05},
                                           RrParam{500, 3, 0.02},
                                           RrParam{1500, 2, 0.01}));

TEST(RrKw, TwoDimensionalMbrsMatchBruteForce) {
  // d = 2: geographic entities as minimum bounding rectangles [34]; the
  // engine is the 4-dimensional dimension-reduction index.
  Rng rng(107);
  const uint32_t n = 500;
  CorpusSpec spec;
  spec.num_objects = n;
  spec.vocab_size = 40;
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto rects =
      GenerateRects<2>(n, PointDistribution::kClustered, 0.05, &rng);
  FrameworkOptions opt;
  opt.k = 2;
  RrKwIndex<2> index(rects, &corpus, opt);
  testing::ExpectAuditClean(index);
  for (int trial = 0; trial < 8; ++trial) {
    Box<2> q;
    for (int dim = 0; dim < 2; ++dim) {
      const double c = rng.NextDouble();
      const double half = rng.UniformDouble(0.02, 0.3);
      q.lo[dim] = c - half;
      q.hi[dim] = c + half;
    }
    auto kws = PickQueryKeywords(corpus, 2, KeywordPick::kCooccurring, &rng);
    EXPECT_EQ(Sorted(index.Query(q, kws)),
              BruteRects(std::span<const Box<2>>(rects), corpus, q, kws));
  }
}

TEST(RrKw, TouchingRectanglesIntersect) {
  // Closed rectangles sharing only a boundary point must be reported.
  Corpus corpus({Document{0, 1}});
  std::vector<Box<1>> rects = {{{{0.0}}, {{1.0}}}};
  FrameworkOptions opt;
  opt.k = 2;
  RrKwIndex<1> index(rects, &corpus, opt);
  std::vector<KeywordId> kws = {0, 1};
  EXPECT_EQ(index.Query({{{1.0}}, {{2.0}}}, kws).size(), 1u);  // Touch at 1.
  EXPECT_EQ(index.Query({{{-1.0}}, {{0.0}}}, kws).size(), 1u);
  EXPECT_TRUE(index.Query({{{1.1}}, {{2.0}}}, kws).empty());
}

TEST(RrKw, ContainedRectanglesIntersect) {
  // Containment in either direction is intersection.
  Corpus corpus({Document{0, 1}, Document{0, 1}});
  std::vector<Box<2>> rects = {{{{0, 0}}, {{10, 10}}},
                               {{{4, 4}}, {{5, 5}}}};
  FrameworkOptions opt;
  opt.k = 2;
  RrKwIndex<2> index(rects, &corpus, opt);
  std::vector<KeywordId> kws = {0, 1};
  // A tiny query inside rect 0 and disjoint from rect 1.
  EXPECT_EQ(index.Query({{{1, 1}}, {{2, 2}}}, kws),
            (std::vector<ObjectId>{0}));
  // A huge query containing both.
  EXPECT_EQ(Sorted(index.Query({{{-1, -1}}, {{20, 20}}}, kws)),
            (std::vector<ObjectId>{0, 1}));
}

}  // namespace
}  // namespace kwsc
