// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Tests for the low-dimensional LP feasibility solver and its use as the
// exact cell test of the box-substrate partition index.

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "core/sp_kw_box.h"
#include "geom/lp.h"
#include "geom/polygon2d.h"
#include "test_util.h"
#include "workload/generator.h"

namespace kwsc {
namespace {

LpConstraint Make2D(double a0, double a1, double b) {
  return LpConstraint{{a0, a1}, b};
}

TEST(Lp, UnconstrainedBoxIsFeasible) {
  auto witness = LpFeasiblePoint({}, {0, 0}, {1, 1});
  ASSERT_TRUE(witness.has_value());
  EXPECT_GE((*witness)[0], 0.0);
  EXPECT_LE((*witness)[0], 1.0);
}

TEST(Lp, EmptyBoxIsInfeasible) {
  EXPECT_FALSE(LpFeasiblePoint({}, {1, 0}, {0, 1}).has_value());
}

TEST(Lp, SingleHalfplaneInsideAndOutside) {
  // x + y <= 0.5 intersects the unit box.
  EXPECT_TRUE(
      LpFeasiblePoint({Make2D(1, 1, 0.5)}, {0, 0}, {1, 1}).has_value());
  // x + y <= -1 does not.
  EXPECT_FALSE(
      LpFeasiblePoint({Make2D(1, 1, -1)}, {0, 0}, {1, 1}).has_value());
}

TEST(Lp, ConjunctionCanBeEmptyWhenEachConstraintIsNot) {
  // x <= 0.2 and -x <= -0.8 (x >= 0.8): each cuts the unit box, the
  // conjunction is empty. This is exactly the case the conservative
  // per-halfspace test cannot decide.
  std::vector<LpConstraint> cons = {Make2D(1, 0, 0.2), Make2D(-1, 0, -0.8)};
  EXPECT_FALSE(LpFeasiblePoint(cons, {0, 0}, {1, 1}).has_value());
  // Widen the second: x >= 0.1 — now feasible.
  cons[1] = Make2D(-1, 0, -0.1);
  auto witness = LpFeasiblePoint(cons, {0, 0}, {1, 1});
  ASSERT_TRUE(witness.has_value());
  EXPECT_GE((*witness)[0], 0.1 - 1e-6);
  EXPECT_LE((*witness)[0], 0.2 + 1e-6);
}

TEST(Lp, ContradictionWithZeroCoefficients) {
  // 0 * x <= -1 is unconditionally false.
  EXPECT_FALSE(
      LpFeasiblePoint({Make2D(0, 0, -1)}, {0, 0}, {1, 1}).has_value());
  // 0 * x <= 1 is unconditionally true.
  EXPECT_TRUE(LpFeasiblePoint({Make2D(0, 0, 1)}, {0, 0}, {1, 1}).has_value());
}

TEST(Lp, WitnessSatisfiesEverything) {
  Rng rng(271);
  int feasible_count = 0;
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<LpConstraint> cons;
    const int s = 1 + static_cast<int>(rng.NextBounded(4));
    for (int i = 0; i < s; ++i) {
      cons.push_back(Make2D(rng.UniformDouble(-1, 1), rng.UniformDouble(-1, 1),
                            rng.UniformDouble(-0.5, 1)));
    }
    auto witness = LpFeasiblePoint(cons, {0, 0}, {1, 1});
    if (!witness.has_value()) continue;
    ++feasible_count;
    for (const auto& con : cons) {
      const double v = con.a[0] * (*witness)[0] + con.a[1] * (*witness)[1];
      EXPECT_LE(v, con.b + 1e-6);
    }
    EXPECT_GE((*witness)[0], -1e-9);
    EXPECT_LE((*witness)[0], 1 + 1e-9);
  }
  EXPECT_GT(feasible_count, 100);  // The sweep covers both outcomes.
}

TEST(Lp, MatchesPolygonClippingGroundTruth2D) {
  // Exact 2-D oracle: clip the box polygon by every halfplane; non-empty
  // clip <=> feasible. Near-degenerate cases (tiny clipped area) are
  // skipped — both methods are tolerance-based there.
  Rng rng(272);
  int checked = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    Box<2> box{{{rng.UniformDouble(-2, 0), rng.UniformDouble(-2, 0)}},
               {{rng.UniformDouble(0.1, 2), rng.UniformDouble(0.1, 2)}}};
    std::vector<LpConstraint> cons;
    ConvexQuery<2> query;
    const int s = 1 + static_cast<int>(rng.NextBounded(4));
    for (int i = 0; i < s; ++i) {
      Halfspace<2> h{{{rng.UniformDouble(-1, 1), rng.UniformDouble(-1, 1)}},
                     rng.UniformDouble(-1, 1)};
      query.constraints.push_back(h);
      cons.push_back(Make2D(h.coeffs[0], h.coeffs[1], h.rhs));
    }
    ConvexPolygon2D clipped = ConvexPolygon2D::FromBox(box);
    for (const auto& h : query.constraints) clipped = clipped.ClipBy(h);
    const double area = clipped.Empty() ? 0.0 : clipped.Area();
    if (area > 1e-5) {
      EXPECT_TRUE(LpFeasiblePoint(cons, {box.lo[0], box.lo[1]},
                                  {box.hi[0], box.hi[1]})
                      .has_value())
          << "trial " << trial;
      ++checked;
    } else if (clipped.Empty()) {
      EXPECT_FALSE(LpFeasiblePoint(cons, {box.lo[0], box.lo[1]},
                                   {box.hi[0], box.hi[1]})
                       .has_value())
          << "trial " << trial;
      ++checked;
    }
  }
  EXPECT_GT(checked, 1000);
}

TEST(Lp, ThreeDimensionalSampledAgreement) {
  Rng rng(273);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<LpConstraint> cons;
    const int s = 1 + static_cast<int>(rng.NextBounded(3));
    for (int i = 0; i < s; ++i) {
      cons.push_back(LpConstraint{{rng.UniformDouble(-1, 1),
                                   rng.UniformDouble(-1, 1),
                                   rng.UniformDouble(-1, 1)},
                                  rng.UniformDouble(-0.5, 1)});
    }
    const bool feasible =
        LpFeasiblePoint(cons, {0, 0, 0}, {1, 1, 1}).has_value();
    // Any satisfied sample point inside the box proves feasibility — the
    // LP must agree.
    bool sampled = false;
    for (int p = 0; p < 200 && !sampled; ++p) {
      double x[3] = {rng.NextDouble(), rng.NextDouble(), rng.NextDouble()};
      bool all = true;
      for (const auto& con : cons) {
        if (con.a[0] * x[0] + con.a[1] * x[1] + con.a[2] * x[2] >
            con.b - 1e-9) {
          all = false;
          break;
        }
      }
      sampled = all;
    }
    if (sampled) {
      EXPECT_TRUE(feasible) << "trial " << trial;
    }
  }
}

TEST(Lp, PolytopeIntersectsBoxWrapper) {
  ConvexQuery<2> q;
  q.constraints.push_back({{{1, 0}}, 0.3});
  q.constraints.push_back({{{-1, 0}}, -0.7});
  Box<2> box{{{0, 0}}, {{1, 1}}};
  EXPECT_FALSE(PolytopeIntersectsBox(q, box));  // 0.7 <= x <= 0.3: empty.
  q.constraints[1].rhs = -0.1;
  EXPECT_TRUE(PolytopeIntersectsBox(q, box));
}

TEST(SpKwBoxExact, SameResultsFewerVisits) {
  Rng rng(274);
  CorpusSpec spec;
  spec.num_objects = 2000;
  spec.vocab_size = 100;
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<2>(2000, PointDistribution::kUniform, &rng);
  FrameworkOptions conservative;
  conservative.k = 2;
  FrameworkOptions exact = conservative;
  exact.exact_cell_tests = true;
  SpKwBoxIndex<2> index_c(pts, &corpus, conservative);
  SpKwBoxIndex<2> index_e(pts, &corpus, exact);

  uint64_t visits_c = 0;
  uint64_t visits_e = 0;
  for (int trial = 0; trial < 20; ++trial) {
    // Narrow slab queries: pairs of near-parallel opposing halfplanes whose
    // conjunction is thin — the conservative test's worst case.
    const double angle = rng.UniformDouble(0, M_PI);
    const double nx = std::cos(angle);
    const double ny = std::sin(angle);
    const double center = rng.UniformDouble(0.2, 0.8);
    ConvexQuery<2> q;
    q.constraints.push_back({{{nx, ny}}, center + 0.01});
    q.constraints.push_back({{{-nx, -ny}}, -(center - 0.01)});
    auto kws = PickQueryKeywords(corpus, 2, KeywordPick::kFrequent, &rng);
    QueryStats sc;
    QueryStats se;
    auto rc = index_c.Query(q, kws, &sc);
    auto re = index_e.Query(q, kws, &se);
    EXPECT_EQ(testing::Sorted(rc), testing::Sorted(re));
    EXPECT_EQ(testing::Sorted(rc),
              testing::BruteConvex(std::span<const Point<2>>(pts), corpus, q,
                                   kws));
    visits_c += sc.nodes_visited;
    visits_e += se.nodes_visited;
  }
  EXPECT_LE(visits_e, visits_c);
}

}  // namespace
}  // namespace kwsc
