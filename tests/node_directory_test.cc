// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Tests for the secondary structure T_u (Section 3.2): large/small
// classification, the tuple registry, and the materialization rule.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "common/random.h"
#include "core/node_directory.h"
#include "text/corpus.h"
#include "workload/generator.h"

namespace kwsc {
namespace {

Corpus MakeCorpus() {
  // Keyword 0 appears in 6 of 8 docs (large at most thresholds); keyword 9
  // appears once (small).
  return Corpus({Document{0, 1}, Document{0, 2}, Document{0, 3},
                 Document{0, 1, 2}, Document{0, 4}, Document{0, 9},
                 Document{5, 6}, Document{7, 8}});
}

TEST(NodeDirectory, EncodeTupleBitPacking) {
  std::vector<uint32_t> pair = {3, 7};
  EXPECT_EQ(NodeDirectory::EncodeTuple(pair),
            (uint64_t{3} << 32) | 7);
  std::vector<uint32_t> triple = {1, 2, 3};
  // 21 bits per id for k = 3.
  EXPECT_EQ(NodeDirectory::EncodeTuple(triple),
            (uint64_t{1} << 42) | (uint64_t{2} << 21) | 3);
}

TEST(NodeDirectory, EncodeTupleInjectiveOnRandomTuples) {
  Rng rng(3);
  FlatHashSet<uint64_t> seen;
  std::set<std::vector<uint32_t>> raw;
  for (int i = 0; i < 5000; ++i) {
    std::vector<uint32_t> t(3);
    for (auto& v : t) v = static_cast<uint32_t>(rng.NextBounded(1 << 21));
    std::sort(t.begin(), t.end());
    const bool new_raw = raw.insert(t).second;
    EXPECT_EQ(seen.Insert(NodeDirectory::EncodeTuple(t)), new_raw);
  }
}

TEST(DirectoryBuilder, WeightMatchesDocSizes) {
  Corpus corpus = MakeCorpus();
  FrameworkOptions opt;
  opt.k = 2;
  DirectoryBuilder builder(&corpus, opt);
  std::vector<ObjectId> all(corpus.num_objects());
  std::iota(all.begin(), all.end(), 0);
  EXPECT_EQ(builder.WeightOf(all), corpus.total_weight());
  std::vector<ObjectId> some = {0, 3};
  EXPECT_EQ(builder.WeightOf(some), 5u);  // |{0,1}| + |{0,1,2}|.
}

TEST(DirectoryBuilder, LargeClassificationFollowsThreshold) {
  Corpus corpus = MakeCorpus();
  FrameworkOptions opt;
  opt.k = 2;  // alpha = 1/2; N_u = 17 -> threshold ~ 4.12.
  DirectoryBuilder builder(&corpus, opt);
  std::vector<ObjectId> active(corpus.num_objects());
  std::iota(active.begin(), active.end(), 0);
  std::vector<std::vector<ObjectId>> children(2);
  children[0] = {0, 1, 2, 3};
  children[1] = {4, 5, 6};
  NodeDirectory dir;
  std::vector<KeywordId> next;
  builder.Build(active, children, nullptr, {7}, &dir, &next);
  EXPECT_EQ(dir.weight(), corpus.total_weight());
  // Keyword 0 occurs 6 times >= 4.12: large. All others occur <= 2: small.
  EXPECT_EQ(dir.num_large(), 1u);
  EXPECT_GE(dir.LargeId(0), 0);
  EXPECT_EQ(dir.LargeId(1), -1);
  EXPECT_EQ(next, (std::vector<KeywordId>{0}));
}

TEST(DirectoryBuilder, MaterializesSmallInheritedKeywordsExcludingPivots) {
  Corpus corpus = MakeCorpus();
  FrameworkOptions opt;
  opt.k = 2;
  DirectoryBuilder builder(&corpus, opt);
  std::vector<ObjectId> active(corpus.num_objects());
  std::iota(active.begin(), active.end(), 0);
  std::vector<std::vector<ObjectId>> children(2);
  children[0] = {0, 1, 2, 3};
  children[1] = {4, 5, 6};
  NodeDirectory dir;
  builder.Build(active, children, nullptr, {7}, &dir, nullptr);
  // Keyword 1 (small, inherited-at-root) occurs in objects 0 and 3.
  const auto list1 = dir.MaterializedList(1);
  ASSERT_TRUE(list1.has_value());
  EXPECT_EQ(std::vector<ObjectId>(list1->begin(), list1->end()),
            (std::vector<ObjectId>{0, 3}));
  // Keyword 7 occurs only in the pivot object 7, so its list is absent.
  EXPECT_FALSE(dir.MaterializedList(7).has_value());
  // Keyword 0 is large: never materialized here.
  EXPECT_FALSE(dir.MaterializedList(0).has_value());
}

TEST(DirectoryBuilder, InheritedFilterRestrictsClassification) {
  Corpus corpus = MakeCorpus();
  FrameworkOptions opt;
  opt.k = 2;
  DirectoryBuilder builder(&corpus, opt);
  std::vector<ObjectId> active(corpus.num_objects());
  std::iota(active.begin(), active.end(), 0);
  std::vector<std::vector<ObjectId>> children(1);
  children[0] = active;
  // Only keyword 2 is inherited: keyword 0 must be invisible here.
  std::vector<KeywordId> inherited = {2};
  NodeDirectory dir;
  builder.Build(active, children, &inherited, {}, &dir, nullptr);
  EXPECT_EQ(dir.LargeId(0), -1);
  const auto list = dir.MaterializedList(2);
  ASSERT_TRUE(list.has_value());
  EXPECT_EQ(std::vector<ObjectId>(list->begin(), list->end()),
            (std::vector<ObjectId>{1, 3}));
  EXPECT_FALSE(dir.MaterializedList(0).has_value());
}

TEST(DirectoryBuilder, TupleRegistryMatchesBruteForce) {
  // Property: a k-tuple of large keywords is registered for child c iff some
  // object in that child's active set carries all k keywords.
  Rng rng(17);
  for (int trial = 0; trial < 10; ++trial) {
    CorpusSpec spec;
    spec.num_objects = 120;
    spec.vocab_size = 15;
    spec.zipf_skew = 0.6;
    spec.min_doc_len = 2;
    spec.max_doc_len = 6;
    Corpus corpus = GenerateCorpus(spec, &rng);
    FrameworkOptions opt;
    opt.k = 2;
    opt.alpha = 0.3;  // Low threshold: many large keywords to exercise.
    DirectoryBuilder builder(&corpus, opt);
    std::vector<ObjectId> active(corpus.num_objects());
    std::iota(active.begin(), active.end(), 0);
    std::vector<std::vector<ObjectId>> children(2);
    for (ObjectId e : active) children[e % 2].push_back(e);
    NodeDirectory dir;
    builder.Build(active, children, nullptr, {}, &dir, nullptr);

    // Collect the large keywords with their lids.
    std::vector<std::pair<KeywordId, uint32_t>> larges;
    for (KeywordId w = 0; w < corpus.vocab_size(); ++w) {
      const int64_t lid = dir.LargeId(w);
      if (lid >= 0) larges.push_back({w, static_cast<uint32_t>(lid)});
    }
    ASSERT_GE(larges.size(), 2u);
    for (size_t a = 0; a < larges.size(); ++a) {
      for (size_t b = a + 1; b < larges.size(); ++b) {
        std::vector<uint32_t> lids = {larges[a].second, larges[b].second};
        std::vector<KeywordId> kws = {larges[a].first, larges[b].first};
        for (size_t c = 0; c < 2; ++c) {
          bool expected = false;
          for (ObjectId e : children[c]) {
            if (corpus.ContainsAll(e, kws)) {
              expected = true;
              break;
            }
          }
          EXPECT_EQ(dir.ChildTupleNonEmpty(c, lids), expected)
              << "keywords " << kws[0] << "," << kws[1] << " child " << c;
        }
      }
    }
  }
}

TEST(DirectoryBuilder, ResolveLargeFillsCanonicalLids) {
  Corpus corpus({Document{0, 2, 4}, Document{0, 2, 4}, Document{0, 2, 4},
                 Document{0, 2, 4}});
  FrameworkOptions opt;
  opt.k = 3;
  opt.alpha = 0.1;  // Everything present is large.
  DirectoryBuilder builder(&corpus, opt);
  std::vector<ObjectId> active = {0, 1, 2, 3};
  std::vector<std::vector<ObjectId>> children(1);
  children[0] = active;
  NodeDirectory dir;
  builder.Build(active, children, nullptr, {}, &dir, nullptr);
  std::vector<KeywordId> sorted_kws = {0, 2, 4};
  uint32_t lids[3];
  KeywordId small = 0;
  ASSERT_TRUE(dir.ResolveLarge(sorted_kws, lids, &small));
  EXPECT_EQ(lids[0], 0u);
  EXPECT_EQ(lids[1], 1u);
  EXPECT_EQ(lids[2], 2u);
  // Lids ascend with keywords, so the resolved array is already canonical.
  EXPECT_TRUE(dir.ChildTupleNonEmpty(0, {lids, 3}));
}

TEST(DirectoryBuilder, ResolveLargeReportsFirstSmall) {
  Corpus corpus = MakeCorpus();
  FrameworkOptions opt;
  opt.k = 2;
  DirectoryBuilder builder(&corpus, opt);
  std::vector<ObjectId> active(corpus.num_objects());
  std::iota(active.begin(), active.end(), 0);
  std::vector<std::vector<ObjectId>> children(1);
  children[0] = active;
  NodeDirectory dir;
  builder.Build(active, children, nullptr, {}, &dir, nullptr);
  std::vector<KeywordId> kws = {0, 9};  // 0 large, 9 small.
  uint32_t lids[2];
  KeywordId small = 99;
  EXPECT_FALSE(dir.ResolveLarge(kws, lids, &small));
  EXPECT_EQ(small, 9u);
}

TEST(DirectoryBuilder, LeafStoresWholeActiveSetAsPivots) {
  Corpus corpus = MakeCorpus();
  FrameworkOptions opt;
  opt.k = 2;
  DirectoryBuilder builder(&corpus, opt);
  std::vector<ObjectId> active = {2, 5, 6};
  NodeDirectory dir;
  builder.BuildLeaf(active, &dir);
  EXPECT_EQ(std::vector<ObjectId>(dir.pivots().begin(), dir.pivots().end()),
            active);
  EXPECT_EQ(dir.weight(), 6u);
  EXPECT_EQ(dir.num_children(), 0u);
}

TEST(DirectoryBuilder, TuplePruningDisabledBuildsNoRegistry) {
  Corpus corpus = MakeCorpus();
  FrameworkOptions opt;
  opt.k = 2;
  opt.enable_tuple_pruning = false;
  DirectoryBuilder builder(&corpus, opt);
  std::vector<ObjectId> active(corpus.num_objects());
  std::iota(active.begin(), active.end(), 0);
  std::vector<std::vector<ObjectId>> children(2);
  children[0] = {0, 1, 2, 3};
  children[1] = {4, 5, 6, 7};
  NodeDirectory dir;
  builder.Build(active, children, nullptr, {}, &dir, nullptr);
  EXPECT_EQ(dir.num_children(), 2u);  // Slots exist but stay empty.
}

}  // namespace
}  // namespace kwsc
