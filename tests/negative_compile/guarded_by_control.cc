// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Control for guarded_by_violation.cc: identical shape, but the guarded
// member is only touched under MutexLock, so this must compile everywhere —
// including under Clang's -Wthread-safety -Werror=thread-safety. If this
// case ever fails, the harness (or the annotation header) is broken, not
// the code under test.

#include "common/mutex.h"

namespace kwsc {

class SafeCounter {
 public:
  void Bump() KWSC_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    ++hits_;
  }

  int hits() KWSC_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return hits_;
  }

 private:
  Mutex mu_;
  int hits_ KWSC_GUARDED_BY(mu_) = 0;
};

void TouchSafeCounter() {
  SafeCounter counter;
  counter.Bump();
  (void)counter.hits();
}

}  // namespace kwsc
