// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Negative-compilation positive control (tests/CMakeLists.txt, "Negative
// compilation"): this TU MUST compile. It proves the harness's include
// paths and standard level are right, so a failure of the negative cases
// means the concept rejected them, not that the harness is broken.

#include "common/serialize.h"
#include "core/contracts.h"

namespace {

struct Conforming {
  void Save(kwsc::OutputArchive* out) const;
  void Load(kwsc::InputArchive* in);
};

static_assert(kwsc::ArchiveSerializable<Conforming>);

}  // namespace
