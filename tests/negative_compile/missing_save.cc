// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Negative-compilation case (tests/CMakeLists.txt, "Negative compilation"):
// this TU MUST NOT compile. A component with a Load but no Save half cannot
// claim ArchiveSerializable — the archive contract is the symmetric pair.

#include "common/serialize.h"
#include "core/contracts.h"

namespace {

struct MissingSave {
  // No Save(OutputArchive*) const.
  void Load(kwsc::InputArchive* in);
};

static_assert(kwsc::ArchiveSerializable<MissingSave>);

}  // namespace
