// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Negative-compilation case (tests/CMakeLists.txt, "Negative compilation"):
// this TU MUST NOT compile. A component whose Load returns a value instead
// of rebuilding in place (returning void) has the top-level static-factory
// shape, not the component archive shape; ArchiveSerializable rejects it.

#include "common/serialize.h"
#include "core/contracts.h"

namespace {

struct WrongLoadReturn {
  void Save(kwsc::OutputArchive* out) const;
  WrongLoadReturn Load(kwsc::InputArchive* in);  // must be void
};

static_assert(kwsc::ArchiveSerializable<WrongLoadReturn>);

}  // namespace
