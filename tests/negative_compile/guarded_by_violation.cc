// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Must NOT compile under Clang with -Wthread-safety -Werror=thread-safety:
// `hits_` is declared KWSC_GUARDED_BY(mu_) but Bump touches it without
// holding the lock. This is the enforcement half of the annotation retrofit
// — if this file ever compiles under the thread-safety analysis, the
// GUARDED_BY contract has silently stopped being checked.
//
// Under gcc the annotations expand to nothing, so the same file doubles as
// a must-compile case: the annotated code has to stay valid plain C++.

#include "common/mutex.h"

namespace kwsc {

class UnsafeCounter {
 public:
  void Bump() { ++hits_; }  // writes hits_ with mu_ not held

 private:
  Mutex mu_;
  int hits_ KWSC_GUARDED_BY(mu_) = 0;
};

void TouchUnsafeCounter() {
  UnsafeCounter counter;
  counter.Bump();
}

}  // namespace kwsc
