// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Concurrency contract: every index is immutable after construction, so any
// number of threads may query the same index simultaneously. These tests
// hammer one index from several threads and check every thread sees exactly
// the single-threaded answers (run them under TSan to verify the
// no-data-race claim mechanically).

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/random.h"
#include "core/orp_kw.h"
#include "core/sp_kw_hs.h"
#include "test_util.h"
#include "workload/generator.h"

namespace kwsc {
namespace {

TEST(Concurrency, ParallelOrpQueriesSeeIdenticalResults) {
  Rng rng(4321);
  CorpusSpec spec;
  spec.num_objects = 3000;
  spec.vocab_size = 100;
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<2>(3000, PointDistribution::kClustered, &rng);
  FrameworkOptions opt;
  opt.k = 2;
  OrpKwIndex<2> index(pts, &corpus, opt);

  // Fixed query batch with precomputed single-threaded answers.
  constexpr int kBatch = 24;
  std::vector<Box<2>> boxes;
  std::vector<std::vector<KeywordId>> kws;
  std::vector<std::vector<ObjectId>> expected;
  for (int i = 0; i < kBatch; ++i) {
    boxes.push_back(GenerateBoxQuery(std::span<const Point<2>>(pts),
                                     rng.UniformDouble(0.01, 0.5), &rng));
    kws.push_back(
        PickQueryKeywords(corpus, 2, KeywordPick::kCooccurring, &rng));
    expected.push_back(index.Query(boxes[i], kws[i]));
  }

  std::atomic<int> mismatches{0};
  auto worker = [&](int seed) {
    Rng local(seed);
    for (int iter = 0; iter < 200; ++iter) {
      const int i = static_cast<int>(local.NextBounded(kBatch));
      if (index.Query(boxes[i], kws[i]) != expected[i]) {
        mismatches.fetch_add(1);
      }
    }
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) threads.emplace_back(worker, 100 + t);
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(Concurrency, ParallelPartitionTreeQueries) {
  Rng rng(4322);
  CorpusSpec spec;
  spec.num_objects = 1500;
  spec.vocab_size = 60;
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<2>(1500, PointDistribution::kUniform, &rng);
  FrameworkOptions opt;
  opt.k = 2;
  SpKwHsIndex index(pts, &corpus, opt);

  ConvexQuery<2> q;
  q.constraints.push_back(
      GenerateHalfspaceQuery(std::span<const Point<2>>(pts), 0.4, &rng));
  auto kws = PickQueryKeywords(corpus, 2, KeywordPick::kFrequent, &rng);
  const auto expected = index.Query(q, kws);

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&] {
      for (int iter = 0; iter < 100; ++iter) {
        if (index.Query(q, kws) != expected) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace kwsc
