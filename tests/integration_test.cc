// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// End-to-end integration tests: the hotel scenario of the paper's
// introduction, run against every index and both baselines simultaneously;
// plus cross-index agreement on a shared random dataset.

#include <gtest/gtest.h>

#include <algorithm>

#include "baseline/keywords_only.h"
#include "baseline/structured_only.h"
#include "common/random.h"
#include "core/lc_kw.h"
#include "core/nn_linf.h"
#include "core/orp_kw.h"
#include "core/srp_kw.h"
#include "test_util.h"
#include "workload/generator.h"

namespace kwsc {
namespace {

using testing::Sorted;

// Keywords of the paper's running example.
constexpr KeywordId kPool = 0;
constexpr KeywordId kFreeParking = 1;
constexpr KeywordId kPetFriendly = 2;
constexpr KeywordId kSpa = 3;
constexpr KeywordId kBeach = 4;

// Hotel(price, rating, Doc) as in Section 1. Points are (price, rating).
struct HotelData {
  Corpus corpus;
  std::vector<Point<2>> points;
};

HotelData MakeHotels() {
  Rng rng(20230618);  // The conference date, for flavor.
  std::vector<Document> docs;
  std::vector<Point<2>> points;
  for (int i = 0; i < 500; ++i) {
    std::vector<KeywordId> tags;
    // Amenities with decreasing popularity.
    if (rng.NextBool(0.6)) tags.push_back(kPool);
    if (rng.NextBool(0.4)) tags.push_back(kFreeParking);
    if (rng.NextBool(0.25)) tags.push_back(kPetFriendly);
    if (rng.NextBool(0.15)) tags.push_back(kSpa);
    if (rng.NextBool(0.1)) tags.push_back(kBeach);
    tags.push_back(static_cast<KeywordId>(5 + rng.NextBounded(40)));  // Brand.
    docs.emplace_back(std::move(tags));
    const double price = rng.UniformDouble(40, 400);
    const double rating = rng.UniformDouble(1, 10);
    points.push_back({{price, rating}});
  }
  return {Corpus(std::move(docs)), std::move(points)};
}

class HotelScenario : public ::testing::Test {
 protected:
  void SetUp() override { data_ = MakeHotels(); }
  HotelData data_;
};

TEST_F(HotelScenario, ConditionC1RangeQuery) {
  // C1: price in [100, 200] and rating >= 8, with keywords pool +
  // free-parking + pet-friendly (k = 3).
  FrameworkOptions opt;
  opt.k = 3;
  OrpKwIndex<2> index(data_.points, &data_.corpus, opt);
  StructuredOnlyBaseline<2> structured(data_.points, &data_.corpus);
  KeywordsOnlyBaseline<2> keywords(data_.points, &data_.corpus);

  Box<2> c1{{{100, 8}}, {{200, 10}}};
  std::vector<KeywordId> kws = {kPool, kFreeParking, kPetFriendly};

  auto expected = testing::BruteBox(
      std::span<const Point<2>>(data_.points), data_.corpus, c1, kws);
  EXPECT_EQ(Sorted(index.Query(c1, kws)), expected);
  EXPECT_EQ(Sorted(structured.QueryBox(c1, kws)), expected);
  EXPECT_EQ(Sorted(keywords.QueryBox(c1, kws)), expected);
}

TEST_F(HotelScenario, ConditionC2LinearConstraint) {
  // C2: c1 * price + c2 * (10 - rating) <= c3, i.e.
  // c1 * price - c2 * rating <= c3 - 10 * c2. One halfspace, k = 2.
  FrameworkOptions opt;
  opt.k = 2;
  LcKwIndex<2> index(data_.points, &data_.corpus, opt);
  StructuredOnlyBaseline<2> structured(data_.points, &data_.corpus);

  const double c1 = 1.0, c2 = 40.0, c3 = 260.0;
  ConvexQuery<2> q;
  q.constraints.push_back({{{c1, -c2}}, c3 - 10 * c2});
  std::vector<KeywordId> kws = {kPool, kFreeParking};

  auto expected = testing::BruteConvex(
      std::span<const Point<2>>(data_.points), data_.corpus, q, kws);
  EXPECT_EQ(Sorted(index.Query(q, kws)), expected);
  EXPECT_EQ(Sorted(structured.QueryConvex(q, kws)), expected);
  EXPECT_FALSE(expected.empty());  // The scenario should be non-trivial.
}

TEST_F(HotelScenario, NearestCheapHighRatedHotel) {
  // "Hotel nearest to (price=120, rating=9) in (price, rating) space with
  // pool and spa" — the similarity-search reading of Corollary 4.
  FrameworkOptions opt;
  opt.k = 2;
  LinfNnIndex<2> index(data_.points, &data_.corpus, opt);
  StructuredOnlyBaseline<2> structured(data_.points, &data_.corpus);
  std::vector<KeywordId> kws = {kPool, kSpa};
  Point<2> q{{120, 9}};
  auto got = index.Query(q, 3, kws);
  auto expected = structured.QueryNearestLinf(q, 3, kws);
  ASSERT_EQ(got.size(), expected.size());
  auto dist = [](const Point<2>& a, const Point<2>& b) {
    return LInfDistance(a, b);
  };
  EXPECT_EQ(testing::DistanceProfile(std::span<const Point<2>>(data_.points),
                                     q, got, dist),
            testing::DistanceProfile(std::span<const Point<2>>(data_.points),
                                     q, expected, dist));
}

TEST_F(HotelScenario, EmptyAnswerExaminesFewObjects) {
  // Hotels with beach + spa + pet-friendly in a deserted price range: the
  // answer is (nearly) empty and the transformed index must stay well below
  // reading the data in whole — the failure mode of both naive approaches
  // the introduction calls out.
  FrameworkOptions opt;
  opt.k = 3;
  OrpKwIndex<2> index(data_.points, &data_.corpus, opt);
  KeywordsOnlyBaseline<2> keywords(data_.points, &data_.corpus);
  Box<2> empty_range{{{395, 9.8}}, {{400, 10}}};
  std::vector<KeywordId> kws = {kPetFriendly, kSpa, kBeach};
  QueryStats stats;
  auto got = index.Query(empty_range, kws, &stats);
  auto got_kw = keywords.QueryBox(empty_range, kws);
  EXPECT_EQ(Sorted(got), Sorted(got_kw));
  // Sublinear work: far below N (= total document weight, ~1500 here).
  EXPECT_LT(stats.ObjectsExamined(), data_.corpus.total_weight() / 4);
}

TEST(CrossIndexAgreement, AllIndexesAnswerTheSameBoxQuery) {
  // One shared dataset; the kd index, the LC index (via the 2d-halfspace
  // translation), and both baselines must return identical sets.
  Rng rng(555);
  CorpusSpec spec;
  spec.num_objects = 600;
  spec.vocab_size = 50;
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<2>(600, PointDistribution::kClustered, &rng);
  FrameworkOptions opt;
  opt.k = 2;
  OrpKwIndex<2> orp(pts, &corpus, opt);
  LcKwIndex<2> lc(pts, &corpus, opt);
  SpKwBoxIndex<2> sp_box(pts, &corpus, opt);
  StructuredOnlyBaseline<2> structured(pts, &corpus);
  KeywordsOnlyBaseline<2> keywords(pts, &corpus);

  for (int trial = 0; trial < 10; ++trial) {
    auto box = GenerateBoxQuery(std::span<const Point<2>>(pts),
                                rng.UniformDouble(0.02, 0.4), &rng);
    auto kws = PickQueryKeywords(corpus, 2, KeywordPick::kCooccurring, &rng);
    const auto expected = Sorted(orp.Query(box, kws));
    EXPECT_EQ(Sorted(lc.Query(BoxToConvexQuery(box), kws)), expected);
    EXPECT_EQ(Sorted(sp_box.Query(BoxToConvexQuery(box), kws)), expected);
    EXPECT_EQ(Sorted(structured.QueryBox(box, kws)), expected);
    EXPECT_EQ(Sorted(keywords.QueryBox(box, kws)), expected);
  }
}

TEST(CrossIndexAgreement, SphericalAndLinearAgreeOnBalls) {
  // A ball query through SRP-KW must equal the brute ball filter, and its
  // lifted halfspace run through LC-KW in 3-D must agree as well.
  Rng rng(556);
  CorpusSpec spec;
  spec.num_objects = 400;
  spec.vocab_size = 40;
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<2>(400, PointDistribution::kUniform, &rng);
  FrameworkOptions opt;
  opt.k = 2;
  SrpKwIndex<2> srp(pts, &corpus, opt);

  // Lifted 3-D dataset fed to the generic LC index.
  std::vector<Point<3>> lifted(pts.size());
  for (size_t i = 0; i < pts.size(); ++i) lifted[i] = LiftPoint(pts[i]);
  LcKwIndex<3> lc(lifted, &corpus, opt);

  for (int trial = 0; trial < 8; ++trial) {
    auto [center, radius_sq] =
        GenerateBallQuery(std::span<const Point<2>>(pts), 0.15, &rng);
    auto kws = PickQueryKeywords(corpus, 2, KeywordPick::kCooccurring, &rng);
    ConvexQuery<3> lifted_q;
    lifted_q.constraints.push_back(BallToLiftedHalfspace(center, radius_sq));
    const auto expected = testing::BruteBall(
        std::span<const Point<2>>(pts), corpus, center, radius_sq, kws);
    EXPECT_EQ(Sorted(srp.Query(center, radius_sq, kws)), expected);
    EXPECT_EQ(Sorted(lc.Query(lifted_q, kws)), expected);
  }
}

}  // namespace
}  // namespace kwsc
