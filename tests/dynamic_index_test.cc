// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Tests for the generic batch-dynamic layer (core/dynamic_index.h) across
// three families: ORP-KW (points/boxes), SP-KW-Box (points/halfspace
// conjunctions), and RR-KW (rectangles/rectangles). The hard invariants:
// batched insert/delete sequences answer exactly like a freshly built
// static index over the live object set, the multi-level auditor is clean
// at every checkpoint, and Save after quiescence is byte-identical to a
// from-scratch build. Plus: checkpoint round-trips, registry-once memory
// accounting through insert→delete→reinsert cycles, and background merges
// with concurrent-consistency spot checks.

#include <gtest/gtest.h>

#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "core/dynamic_index.h"
#include "core/dynamic_orp_kw.h"
#include "core/orp_kw.h"
#include "core/rr_kw.h"
#include "core/sp_kw_box.h"
#include "geom/halfspace.h"
#include "test_util.h"

namespace kwsc {
namespace {

using testing::ExpectAuditClean;
using testing::Sorted;

Document RandomDoc(Rng& rng) {
  std::vector<KeywordId> kws;
  const int len = 2 + static_cast<int>(rng.NextBounded(4));
  while (static_cast<int>(kws.size()) < len) {
    KeywordId w = static_cast<KeywordId>(rng.NextBounded(30));
    if (std::find(kws.begin(), kws.end(), w) == kws.end()) kws.push_back(w);
  }
  return Document(std::move(kws));
}

std::vector<KeywordId> RandomQueryKeywords(Rng& rng) {
  return {static_cast<KeywordId>(rng.NextBounded(15)),
          static_cast<KeywordId>(15 + rng.NextBounded(15))};
}

// ---- Per-family generators and the family-appropriate Save bytes. ----

struct OrpFamilyCase {
  using Family = OrpKwIndex<2>;
  static Point<2> MakeGeom(Rng& rng) {
    return Point<2>{{rng.NextDouble(), rng.NextDouble()}};
  }
  static Box<2> MakeRegion(Rng& rng) {
    Box<2> q;
    for (int dim = 0; dim < 2; ++dim) {
      const double a = rng.NextDouble();
      const double b = rng.NextDouble();
      q.lo[dim] = std::min(a, b);
      q.hi[dim] = std::max(a, b);
    }
    return q;
  }
  static std::string SaveBytes(const Family& index) {
    std::ostringstream out;
    index.Save(&out);
    return out.str();
  }
};

struct SpFamilyCase {
  using Family = SpKwBoxIndex<2>;
  static Point<2> MakeGeom(Rng& rng) {
    return Point<2>{{rng.NextDouble(), rng.NextDouble()}};
  }
  static ConvexQuery<2> MakeRegion(Rng& rng) {
    ConvexQuery<2> q;
    for (int i = 0; i < 3; ++i) {
      Halfspace<2> h;
      h.coeffs = {rng.NextDouble() * 2 - 1, rng.NextDouble() * 2 - 1};
      h.rhs = rng.NextDouble() * 1.2 - 0.2;
      q.constraints.push_back(h);
    }
    return q;
  }
  static std::string SaveBytes(const Family& index) {
    std::ostringstream out;
    index.Save(&out);
    return out.str();
  }
};

struct RrFamilyCase {
  using Family = RrKwIndex<1>;
  static Box<1> MakeGeom(Rng& rng) {
    Box<1> r;
    r.lo[0] = rng.NextDouble();
    r.hi[0] = r.lo[0] + rng.NextDouble() * 0.1;
    return r;
  }
  static Box<1> MakeRegion(Rng& rng) {
    Box<1> q;
    const double a = rng.NextDouble();
    const double b = rng.NextDouble();
    q.lo[0] = std::min(a, b);
    q.hi[0] = std::max(a, b);
    return q;
  }
  static std::string SaveBytes(const Family& index) {
    std::ostringstream out;
    index.SaveFlat(&out);
    return out.str();
  }
};

template <typename Case>
class DynamicIndexTest : public ::testing::Test {};

using FamilyCases =
    ::testing::Types<OrpFamilyCase, SpFamilyCase, RrFamilyCase>;
TYPED_TEST_SUITE(DynamicIndexTest, FamilyCases);

// Batched inserts and tombstone deletes, checked at every round against a
// freshly built static index over the live object set: identical answers,
// clean multi-level audits, and (after quiescence) byte-identical Save.
TYPED_TEST(DynamicIndexTest, BatchedUpdatesMatchFreshStaticBuild) {
  using Case = TypeParam;
  using Family = typename Case::Family;
  using Geom = typename Family::DynamicGeomType;
  Rng rng(977);
  FrameworkOptions opt;
  opt.k = 2;
  DynamicIndex<Family> dynamic(opt, /*buffer_capacity=*/16);

  std::vector<Geom> geoms;
  std::vector<Document> docs;
  std::vector<bool> live;
  for (int round = 0; round < 10; ++round) {
    const size_t batch = 1 + rng.NextBounded(40);
    std::vector<Geom> batch_geoms;
    std::vector<Document> batch_docs;
    for (size_t i = 0; i < batch; ++i) {
      batch_geoms.push_back(Case::MakeGeom(rng));
      batch_docs.push_back(RandomDoc(rng));
      geoms.push_back(batch_geoms.back());
      docs.push_back(batch_docs.back());
      live.push_back(true);
    }
    const ObjectId first = dynamic.InsertBatch(batch_geoms, batch_docs);
    EXPECT_EQ(first, static_cast<ObjectId>(geoms.size() - batch));

    if (round > 0) {
      std::vector<ObjectId> doomed;
      for (ObjectId id = 0; id < live.size(); ++id) {
        if (live[id] && rng.NextBounded(5) == 0) doomed.push_back(id);
      }
      EXPECT_EQ(dynamic.DeleteBatch(doomed), doomed.size());
      for (ObjectId id : doomed) live[id] = false;
    }

    ExpectAuditClean(dynamic);
    EXPECT_EQ(dynamic.num_objects(), geoms.size());
    EXPECT_EQ(dynamic.live_objects(),
              static_cast<size_t>(
                  std::count(live.begin(), live.end(), true)));

    // Oracle: a fresh static index over the live objects, ids translated
    // back to global insertion order.
    std::vector<Geom> live_geoms;
    std::vector<Document> live_docs;
    std::vector<ObjectId> live_ids;
    for (ObjectId id = 0; id < live.size(); ++id) {
      if (!live[id]) continue;
      live_geoms.push_back(geoms[id]);
      live_docs.push_back(docs[id]);
      live_ids.push_back(id);
    }
    const Corpus corpus(live_docs);
    const Family fresh(live_geoms, &corpus, opt);
    for (int qi = 0; qi < 6; ++qi) {
      const auto region = Case::MakeRegion(rng);
      const std::vector<KeywordId> kws = RandomQueryKeywords(rng);
      std::vector<ObjectId> want;
      for (ObjectId local : fresh.Query(region, kws)) {
        want.push_back(live_ids[local]);
      }
      std::sort(want.begin(), want.end());
      EXPECT_EQ(Sorted(dynamic.Query(region, kws)), want)
          << "round " << round << " query " << qi;
    }
  }

  // Save after quiescence == from-scratch build over the live set.
  dynamic.WaitQuiescent();
  const auto compact = dynamic.Compact();
  std::vector<Geom> live_geoms;
  std::vector<Document> live_docs;
  std::vector<ObjectId> live_ids;
  for (ObjectId id = 0; id < live.size(); ++id) {
    if (!live[id]) continue;
    live_geoms.push_back(geoms[id]);
    live_docs.push_back(docs[id]);
    live_ids.push_back(id);
  }
  EXPECT_EQ(compact.ids, live_ids);
  const Corpus corpus(live_docs);
  const Family scratch(live_geoms, &corpus, opt);
  EXPECT_EQ(Case::SaveBytes(*compact.index), Case::SaveBytes(scratch));
}

// The "KWDY" checkpoint round-trips: a loaded checkpoint answers like the
// original, audits clean, and re-saves byte-identically.
TYPED_TEST(DynamicIndexTest, CheckpointRoundTripsByteIdentically) {
  using Case = TypeParam;
  using Family = typename Case::Family;
  Rng rng(1789);
  FrameworkOptions opt;
  opt.k = 2;
  DynamicIndex<Family> dynamic(opt, /*buffer_capacity=*/8);
  for (int i = 0; i < 83; ++i) {
    const ObjectId id = dynamic.Insert(Case::MakeGeom(rng), RandomDoc(rng));
    if (i % 7 == 3) {
      EXPECT_TRUE(dynamic.Delete(id));
    }
  }

  std::ostringstream out;
  dynamic.SaveCheckpoint(&out);
  std::istringstream in(out.str());
  const auto loaded = DynamicIndex<Family>::LoadCheckpoint(&in);
  ASSERT_NE(loaded, nullptr);
  ExpectAuditClean(*loaded);
  EXPECT_EQ(loaded->num_objects(), dynamic.num_objects());
  EXPECT_EQ(loaded->live_objects(), dynamic.live_objects());
  EXPECT_EQ(loaded->ActiveLevels(), dynamic.ActiveLevels());
  for (int qi = 0; qi < 8; ++qi) {
    const auto region = Case::MakeRegion(rng);
    const std::vector<KeywordId> kws = RandomQueryKeywords(rng);
    EXPECT_EQ(Sorted(loaded->Query(region, kws)),
              Sorted(dynamic.Query(region, kws)));
  }
  std::ostringstream again;
  loaded->SaveCheckpoint(&again);
  EXPECT_EQ(out.str(), again.str());
}

// Delete semantics: tombstoning is idempotent, ids are never reused, and
// deleted objects vanish from answers immediately — before any carry
// physically drops them.
TEST(DynamicIndexDeletes, TombstonesFilterImmediately) {
  FrameworkOptions opt;
  opt.k = 2;
  DynamicOrpKwIndex<2> dynamic(opt, /*buffer_capacity=*/4);
  const ObjectId a = dynamic.Insert({{0.2, 0.2}}, Document{1, 2});
  const ObjectId b = dynamic.Insert({{0.8, 0.8}}, Document{1, 2});
  const std::vector<KeywordId> kws = {1, 2};
  const Box<2> everywhere{{{0, 0}}, {{1, 1}}};
  EXPECT_EQ(Sorted(dynamic.Query(everywhere, kws)),
            (std::vector<ObjectId>{a, b}));
  EXPECT_TRUE(dynamic.Delete(a));
  EXPECT_FALSE(dynamic.Delete(a));  // Idempotent: already tombstoned.
  EXPECT_EQ(dynamic.Query(everywhere, kws), (std::vector<ObjectId>{b}));
  EXPECT_EQ(dynamic.live_objects(), 1u);
  EXPECT_EQ(dynamic.num_objects(), 2u);
  const ObjectId c = dynamic.Insert({{0.5, 0.5}}, Document{1, 2});
  EXPECT_EQ(c, 2u);  // Ids are never reused after Delete.
  ExpectAuditClean(dynamic);
}

// Registry-once accounting through insert→delete→reinsert cycles: a
// tombstoned id's document stays charged exactly once (the registry retains
// it; ids are never reused), and a reinsert of the same content charges
// exactly one more copy — never zero, never two.
TEST(DynamicIndexMemory, RegistryOnceAccountingSurvivesDeleteReinsertCycles) {
  FrameworkOptions opt;
  opt.k = 2;
  DynamicOrpKwIndex<2> dynamic(opt, /*buffer_capacity=*/8);
  Rng rng(641);
  for (int i = 0; i < 8; ++i) {  // Fill to exactly one carry: empty buffer.
    dynamic.Insert({{rng.NextDouble(), rng.NextDouble()}},
                   Document{static_cast<KeywordId>(i), 100});
  }
  std::vector<KeywordId> big(10000);
  std::iota(big.begin(), big.end(), 0);
  const Document big_doc(big);
  const size_t doc_bytes = big.size() * sizeof(KeywordId);

  size_t base = dynamic.MemoryBytes();
  for (int cycle = 0; cycle < 3; ++cycle) {
    const ObjectId id = dynamic.Insert({{0.5, 0.5}}, big_doc);
    const size_t after_insert = dynamic.MemoryBytes();
    EXPECT_GE(after_insert - base, doc_bytes) << "cycle " << cycle;
    EXPECT_LT(after_insert - base, doc_bytes + doc_bytes / 2)
        << "cycle " << cycle;

    EXPECT_TRUE(dynamic.Delete(id));
    const size_t after_delete = dynamic.MemoryBytes();
    // The tombstoned registry entry is retained and charged exactly once:
    // deleting neither frees it nor double-counts it.
    EXPECT_GE(after_delete - base, doc_bytes) << "cycle " << cycle;
    EXPECT_LT(after_delete - base, doc_bytes + doc_bytes / 2)
        << "cycle " << cycle;
    base = after_delete;
  }
  ExpectAuditClean(dynamic);
}

// A carry that gathers tombstoned members drops them from the level but
// keeps them in the registry: queries stay correct and audits stay clean
// across the physical reclamation.
TEST(DynamicIndexDeletes, CarryDropsTombstonedMembers) {
  FrameworkOptions opt;
  opt.k = 2;
  DynamicOrpKwIndex<2> dynamic(opt, /*buffer_capacity=*/4);
  Rng rng(733);
  std::vector<bool> live;
  for (int i = 0; i < 40; ++i) {
    const ObjectId id = dynamic.Insert(
        {{rng.NextDouble(), rng.NextDouble()}},
        Document{static_cast<KeywordId>(i % 5),
                 static_cast<KeywordId>(5 + i % 3)});
    live.push_back(true);
    if (i % 3 == 1) {
      EXPECT_TRUE(dynamic.Delete(id));
      live[id] = false;
    }
    ExpectAuditClean(dynamic);
  }
  // Tombstoned members gathered by carries were dropped; the level set now
  // holds fewer members than were ever inserted, but every live id answers.
  const Box<2> everywhere{{{0, 0}}, {{1, 1}}};
  const std::vector<KeywordId> kws = {0, 5};
  std::vector<ObjectId> want;
  for (ObjectId id = 0; id < live.size(); ++id) {
    if (live[id] && id % 5 == 0 && (5 + id % 3) == 5) want.push_back(id);
  }
  EXPECT_EQ(Sorted(dynamic.Query(everywhere, kws)), want);
  EXPECT_EQ(dynamic.num_objects(), 40u);
  EXPECT_LT(dynamic.live_objects(), 40u);
}

// Background merges: with a merge pool, a single writer's inserts/deletes
// publish immediately (queries between operations always see the full
// object set) while carries rebuild levels off-thread. At quiescence the
// audits and the compacted byte-identity hold exactly as in the
// synchronous mode.
TEST(DynamicIndexConcurrent, BackgroundMergesKeepAnswersExact) {
  ThreadPool pool(3);
  FrameworkOptions opt;
  opt.k = 2;
  DynamicOrpKwIndex<2> dynamic(opt, /*buffer_capacity=*/32, &pool);
  Rng rng(1313);
  std::vector<Point<2>> points;
  std::vector<Document> docs;
  std::vector<bool> live;
  for (int step = 0; step < 1200; ++step) {
    Point<2> p{{rng.NextDouble(), rng.NextDouble()}};
    Document doc = RandomDoc(rng);
    points.push_back(p);
    docs.push_back(doc);
    live.push_back(true);
    dynamic.Insert(p, std::move(doc));
    if (step % 11 == 5) {
      const ObjectId victim = static_cast<ObjectId>(rng.NextBounded(live.size()));
      if (live[victim]) {
        EXPECT_TRUE(dynamic.Delete(victim));
        live[victim] = false;
      }
    }
    if (step % 101 != 0) continue;
    // The snapshot published by the Insert above already includes every
    // object: merges change structure, never membership.
    const Box<2> q = OrpFamilyCase::MakeRegion(rng);
    const std::vector<KeywordId> kws = RandomQueryKeywords(rng);
    std::vector<ObjectId> want;
    for (ObjectId e = 0; e < points.size(); ++e) {
      if (live[e] && q.Contains(points[e]) &&
          docs[e].ContainsAll(kws.data(), kws.size())) {
        want.push_back(e);
      }
    }
    EXPECT_EQ(Sorted(dynamic.Query(q, kws)), want) << "step " << step;
    ExpectAuditClean(dynamic);  // Audits are safe mid-merge.
  }
  dynamic.WaitQuiescent();
  EXPECT_FALSE(dynamic.MergeInFlight());
  ExpectAuditClean(dynamic);

  const auto compact = dynamic.Compact();
  std::vector<Point<2>> live_points;
  std::vector<Document> live_docs;
  for (ObjectId id = 0; id < live.size(); ++id) {
    if (!live[id]) continue;
    live_points.push_back(points[id]);
    live_docs.push_back(docs[id]);
  }
  const Corpus corpus(live_docs);
  const OrpKwIndex<2> scratch(live_points, &corpus, opt);
  EXPECT_EQ(OrpFamilyCase::SaveBytes(*compact.index),
            OrpFamilyCase::SaveBytes(scratch));
}

}  // namespace
}  // namespace kwsc
