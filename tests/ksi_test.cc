// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Tests for the k-SI module (Section 1.2): the instance translation, the
// naive inverted-index baseline, and the framework index (the generalized
// Cohen–Porat structure).

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/random.h"
#include "ksi/framework_ksi.h"
#include "ksi/ksi_instance.h"
#include "ksi/naive_ksi.h"
#include "workload/generator.h"

namespace kwsc {
namespace {

std::vector<int64_t> BruteIntersect(const std::vector<std::vector<int64_t>>& sets,
                                    std::span<const KeywordId> ids) {
  std::set<int64_t> acc(sets[ids[0]].begin(), sets[ids[0]].end());
  for (size_t i = 1; i < ids.size(); ++i) {
    std::set<int64_t> next;
    for (int64_t v : sets[ids[i]]) {
      if (acc.count(v)) next.insert(v);
    }
    acc = std::move(next);
  }
  return {acc.begin(), acc.end()};
}

TEST(KsiInstance, TranslationMatchesSection12) {
  std::vector<std::vector<int64_t>> sets = {{1, 5, 9}, {5, 9}, {9, 42}};
  auto instance = KsiInstance::FromSets(sets);
  // Union has 4 distinct elements; N = sum |S_i| = 7 (Eq. (2)).
  EXPECT_EQ(instance.values, (std::vector<int64_t>{1, 5, 9, 42}));
  EXPECT_EQ(instance.corpus.total_weight(), 7u);
  EXPECT_EQ(instance.num_sets, 3u);
  // Element 9 is in all three sets.
  EXPECT_EQ(instance.corpus.doc(2).keywords(),
            (std::vector<KeywordId>{0, 1, 2}));
}

TEST(KsiInstance, DuplicatesWithinSetCollapsed) {
  std::vector<std::vector<int64_t>> sets = {{7, 7, 7}, {7}};
  auto instance = KsiInstance::FromSets(sets);
  EXPECT_EQ(instance.values.size(), 1u);
  EXPECT_EQ(instance.corpus.total_weight(), 2u);
}

TEST(NaiveKsi, SmallExample) {
  std::vector<std::vector<int64_t>> sets = {{1, 2, 3}, {2, 3, 4}, {3, 4, 5}};
  auto instance = KsiInstance::FromSets(sets);
  NaiveKsi naive(&instance);
  std::vector<KeywordId> q01 = {0, 1};
  EXPECT_EQ(naive.Report(q01), (std::vector<int64_t>{2, 3}));
  std::vector<KeywordId> q012 = {0, 1, 2};
  EXPECT_EQ(naive.Report(q012), (std::vector<int64_t>{3}));
  EXPECT_FALSE(naive.Empty(q01));
}

TEST(FrameworkKsi, SmallExample) {
  std::vector<std::vector<int64_t>> sets = {{1, 2, 3}, {2, 3, 4}};
  auto instance = KsiInstance::FromSets(sets);
  FrameworkOptions opt;
  opt.k = 2;
  FrameworkKsi index(&instance, opt);
  std::vector<KeywordId> q = {0, 1};
  auto got = index.Report(q);
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, (std::vector<int64_t>{2, 3}));
  EXPECT_FALSE(index.Empty(q));
}

struct KsiParam {
  size_t m;
  size_t universe;
  double avg_size;
  int k;
};

class KsiRandomizedTest : public ::testing::TestWithParam<KsiParam> {};

TEST_P(KsiRandomizedTest, AllThreeImplementationsAgree) {
  const auto p = GetParam();
  Rng rng(5000 + p.m + p.universe + p.k);
  auto sets = GenerateKsiSets(p.m, p.universe, p.avg_size, &rng);
  auto instance = KsiInstance::FromSets(sets);
  NaiveKsi naive(&instance);
  FrameworkOptions opt;
  opt.k = p.k;
  FrameworkKsi framework(&instance, opt);
  for (int trial = 0; trial < 15; ++trial) {
    std::vector<KeywordId> ids;
    while (ids.size() < static_cast<size_t>(p.k)) {
      KeywordId id = static_cast<KeywordId>(rng.NextBounded(p.m));
      if (std::find(ids.begin(), ids.end(), id) == ids.end()) {
        ids.push_back(id);
      }
    }
    auto expected = BruteIntersect(sets, ids);
    EXPECT_EQ(naive.Report(ids), expected);
    auto got = framework.Report(ids);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expected);
    EXPECT_EQ(naive.Empty(ids), expected.empty());
    EXPECT_EQ(framework.Empty(ids), expected.empty()) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, KsiRandomizedTest,
                         ::testing::Values(KsiParam{5, 100, 20, 2},
                                           KsiParam{10, 500, 50, 2},
                                           KsiParam{10, 500, 50, 3},
                                           KsiParam{30, 2000, 80, 2},
                                           KsiParam{8, 50, 25, 4}));

TEST(FrameworkKsi, EmptyIntersectionDetectedQuickly) {
  // Two large sets with disjoint ranges: OUT = 0 and the emptiness query
  // must finish inside its O(N^{1/2}) budget (this is the whole point of the
  // structure vs. the naive baseline).
  std::vector<std::vector<int64_t>> sets(2);
  for (int64_t v = 0; v < 3000; ++v) sets[0].push_back(v);
  for (int64_t v = 3000; v < 6000; ++v) sets[1].push_back(v);
  auto instance = KsiInstance::FromSets(sets);
  FrameworkOptions opt;
  opt.k = 2;
  FrameworkKsi index(&instance, opt);
  std::vector<KeywordId> q = {0, 1};
  QueryStats stats;
  EXPECT_TRUE(index.Empty(q, &stats));
  // Work must be sublinear: far fewer object examinations than N = 6000.
  EXPECT_LT(stats.ObjectsExamined(), 1500u);
}

TEST(FrameworkKsi, ReportingCostScalesWithOutput) {
  // Planted overlap: both sets share exactly `overlap` elements.
  const int64_t n_side = 4000;
  const int64_t overlap = 32;
  std::vector<std::vector<int64_t>> sets(2);
  for (int64_t v = 0; v < n_side; ++v) sets[0].push_back(v);
  for (int64_t v = n_side - overlap; v < 2 * n_side - overlap; ++v) {
    sets[1].push_back(v);
  }
  auto instance = KsiInstance::FromSets(sets);
  FrameworkOptions opt;
  opt.k = 2;
  FrameworkKsi index(&instance, opt);
  std::vector<KeywordId> q = {0, 1};
  QueryStats stats;
  auto got = index.Report(q, &stats);
  EXPECT_EQ(got.size(), static_cast<size_t>(overlap));
  // Sublinear work: N = 8000, expected ~ sqrt(N) * sqrt(OUT) ~ 500.
  EXPECT_LT(stats.ObjectsExamined(), 4000u);
}

}  // namespace
}  // namespace kwsc
