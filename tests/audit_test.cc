// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Tests for the paper-invariant auditor (audit/index_auditor.h).
//
// Two halves:
//   1. clean builds of every index family audit clean, including one build
//      per family at N >= 10^5 (N = total verbose-set weight, the paper's
//      input-size measure);
//   2. corruption injection: each structural invariant is broken in a built
//      index through audit::AuditAccess, and the audit must report *that*
//      violation class — proving every check can actually fire and is
//      attributed correctly.

#include <gtest/gtest.h>

#include <cstring>
#include <span>
#include <sstream>
#include <vector>

#include "audit/audit.h"
#include "common/flat_arena.h"
#include "audit/audit_access.h"
#include "audit/index_auditor.h"
#include "common/random.h"
#include "core/dim_reduction.h"
#include "core/orp_kw.h"
#include "core/rr_kw.h"
#include "core/sp_kw_box.h"
#include "kdtree/interval_tree.h"
#include "kdtree/kd_tree.h"
#include "text/corpus.h"
#include "text/document.h"
#include "workload/generator.h"

namespace kwsc {
namespace {

using audit::AuditAccess;
using audit::AuditCheck;
using audit::AuditIndex;
using audit::AuditOptions;
using audit::AuditReport;

// Corrupted indexes cannot go through Save/Load (the archive layer has its
// own KWSC_CHECK aborts); the structural walk is what is under test.
AuditOptions NoSerialization() {
  AuditOptions options;
  options.check_serialization = false;
  return options;
}

/// A corpus where every document carries the pair {0, 1} plus one varying
/// keyword: keywords 0 and 1 are large at every node of interest, so tuple
/// registries and materialized lists are all exercised.
Corpus SharedPairCorpus(uint32_t n, uint32_t varying = 13) {
  std::vector<Document> docs;
  docs.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    docs.push_back(Document{0, 1, static_cast<KeywordId>(2 + i % varying)});
  }
  return Corpus(std::move(docs));
}

std::vector<Point<2>> GridPoints(uint32_t n) {
  std::vector<Point<2>> pts;
  pts.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    // Distinct coordinates in both dimensions, deliberately not axis-sorted
    // the same way.
    pts.push_back({{static_cast<double>(i),
                    static_cast<double>((i * 73) % n)}});
  }
  return pts;
}

OrpKwIndex<2> BuildOrp(const Corpus& corpus,
                       const std::vector<Point<2>>& pts) {
  FrameworkOptions opt;
  opt.k = 2;
  return OrpKwIndex<2>(pts, &corpus, opt);
}

// ---------------------------------------------------------------------------
// Clean builds audit clean.
// ---------------------------------------------------------------------------

TEST(AuditClean, OrpKw) {
  const Corpus corpus = SharedPairCorpus(256);
  const auto pts = GridPoints(256);
  const OrpKwIndex<2> index = BuildOrp(corpus, pts);
  const AuditReport report = AuditIndex(index);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_GT(report.nodes_checked, 0u);
  EXPECT_EQ(report.objects_checked, 256u);
}

TEST(AuditClean, DimRed) {
  Rng rng(8101);
  CorpusSpec spec;
  spec.num_objects = 600;
  spec.vocab_size = 50;
  const Corpus corpus = GenerateCorpus(spec, &rng);
  const auto pts = GeneratePoints<3>(600, PointDistribution::kUniform, &rng);
  FrameworkOptions opt;
  opt.k = 2;
  const DimRedOrpKwIndex<3> index(pts, &corpus, opt);
  const AuditReport report = AuditIndex(index);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(AuditClean, SpKwBox) {
  Rng rng(8102);
  CorpusSpec spec;
  spec.num_objects = 500;
  spec.vocab_size = 40;
  const Corpus corpus = GenerateCorpus(spec, &rng);
  const auto pts = GeneratePoints<2>(500, PointDistribution::kClustered,
                                     &rng);
  FrameworkOptions opt;
  opt.k = 2;
  const SpKwBoxIndex<2> index(pts, &corpus, opt);
  const AuditReport report = AuditIndex(index);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(AuditClean, RrKw) {
  Rng rng(8103);
  CorpusSpec spec;
  spec.num_objects = 400;
  spec.vocab_size = 40;
  const Corpus corpus = GenerateCorpus(spec, &rng);
  const auto rects =
      GenerateRects<1>(400, PointDistribution::kUniform, 0.05, &rng);
  FrameworkOptions opt;
  opt.k = 2;
  const RrKwIndex<1> index(rects, &corpus, opt);
  const AuditReport report = AuditIndex(index);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(AuditClean, Substrates) {
  Rng rng(8104);
  const auto pts = GeneratePoints<2>(700, PointDistribution::kUniform, &rng);
  const KdTree<2> tree{std::span<const Point<2>>(pts)};
  const AuditReport kd = audit::AuditKdTree(tree);
  EXPECT_TRUE(kd.ok()) << kd.ToString();

  const auto ivs = GenerateRects<1>(300, PointDistribution::kUniform, 0.05,
                                    &rng);
  const IntervalTree<double> itree{std::span<const Box<1>>(ivs)};
  const AuditReport it = audit::AuditIntervalTree(itree);
  EXPECT_TRUE(it.ok()) << it.ToString();
}

TEST(AuditClean, DisabledFeatureVariantsAuditClean) {
  const Corpus corpus = SharedPairCorpus(200);
  const auto pts = GridPoints(200);
  FrameworkOptions opt;
  opt.k = 2;
  opt.enable_tuple_pruning = false;
  const OrpKwIndex<2> no_tuples(pts, &corpus, opt);
  EXPECT_TRUE(AuditIndex(no_tuples).ok());

  opt.enable_tuple_pruning = true;
  opt.enable_materialized_lists = false;
  const OrpKwIndex<2> no_lists(pts, &corpus, opt);
  EXPECT_TRUE(AuditIndex(no_lists).ok());
}

// ---------------------------------------------------------------------------
// Corruption injection: every violation class must fire, and fire as itself.
// ---------------------------------------------------------------------------

TEST(AuditCorruption, SwappedChildrenBreakCellDerivationAndPreorder) {
  const Corpus corpus = SharedPairCorpus(256);
  const auto pts = GridPoints(256);
  OrpKwIndex<2> index = BuildOrp(corpus, pts);
  auto& nodes = AuditAccess::MutableNodes(&index);
  ASSERT_FALSE(nodes[0].IsLeaf());
  std::swap(nodes[0].child[0], nodes[0].child[1]);

  const AuditReport report = AuditIndex(index, NoSerialization());
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.Has(AuditCheck::kCellGeometry)) << report.ToString();
  EXPECT_TRUE(report.Has(AuditCheck::kTreeStructure)) << report.ToString();
}

TEST(AuditCorruption, CorruptedWeightIsCaughtByWeightAccounting) {
  const Corpus corpus = SharedPairCorpus(256);
  const auto pts = GridPoints(256);
  OrpKwIndex<2> index = BuildOrp(corpus, pts);
  auto& nodes = AuditAccess::MutableNodes(&index);
  AuditAccess::MutableWeight(&nodes[0].dir) += 7;

  const AuditReport report = AuditIndex(index, NoSerialization());
  EXPECT_TRUE(report.Has(AuditCheck::kWeightAccounting)) << report.ToString();
}

TEST(AuditCorruption, DuplicatedPivotBreaksDisjointness) {
  const Corpus corpus = SharedPairCorpus(256);
  const auto pts = GridPoints(256);
  OrpKwIndex<2> index = BuildOrp(corpus, pts);
  auto& nodes = AuditAccess::MutableNodes(&index);
  ASSERT_FALSE(nodes[0].IsLeaf());
  const ObjectId stolen = nodes[0].dir.pivots()[0];
  // Plant the root pivot into some leaf as well.
  for (auto& node : nodes) {
    if (node.IsLeaf()) {
      AuditAccess::MutablePivots(&node.dir).push_back(stolen);
      break;
    }
  }
  const AuditReport report = AuditIndex(index, NoSerialization());
  EXPECT_TRUE(report.Has(AuditCheck::kPartitionDisjoint))
      << report.ToString();
}

TEST(AuditCorruption, DroppedPivotBreaksCoverage) {
  const Corpus corpus = SharedPairCorpus(256);
  const auto pts = GridPoints(256);
  OrpKwIndex<2> index = BuildOrp(corpus, pts);
  auto& nodes = AuditAccess::MutableNodes(&index);
  for (auto& node : nodes) {
    if (node.IsLeaf() && !node.dir.pivots().empty()) {
      AuditAccess::MutablePivots(&node.dir).pop_back();
      break;
    }
  }
  const AuditReport report = AuditIndex(index, NoSerialization());
  EXPECT_TRUE(report.Has(AuditCheck::kPartitionCoverage))
      << report.ToString();
}

TEST(AuditCorruption, BogusMaterializedListIsCaught) {
  const Corpus corpus = SharedPairCorpus(256);
  const auto pts = GridPoints(256);
  OrpKwIndex<2> index = BuildOrp(corpus, pts);
  auto& nodes = AuditAccess::MutableNodes(&index);
  ASSERT_FALSE(nodes[0].IsLeaf());
  // Keyword 0 occurs in every document, so it is large at the root — a
  // materialized list for it is wrong by construction.
  AuditAccess::MutableMaterialized(&nodes[0].dir)[KeywordId{0}].push_back(0);

  const AuditReport report = AuditIndex(index, NoSerialization());
  EXPECT_TRUE(report.Has(AuditCheck::kDirectoryMaterialized))
      << report.ToString();
}

TEST(AuditCorruption, InsertedPhantomTupleIsCaught) {
  const Corpus corpus = SharedPairCorpus(256);
  const auto pts = GridPoints(256);
  OrpKwIndex<2> index = BuildOrp(corpus, pts);
  auto& nodes = AuditAccess::MutableNodes(&index);
  ASSERT_FALSE(nodes[0].IsLeaf());
  auto& registries = AuditAccess::MutableChildTuples(&nodes[0].dir);
  ASSERT_FALSE(registries.empty());
  registries[0].Insert(0xDEADBEEFull);

  const AuditReport report = AuditIndex(index, NoSerialization());
  EXPECT_TRUE(report.Has(AuditCheck::kDirectoryTuples)) << report.ToString();
}

TEST(AuditCorruption, DroppedTupleRegistryIsCaught) {
  const Corpus corpus = SharedPairCorpus(256);
  const auto pts = GridPoints(256);
  OrpKwIndex<2> index = BuildOrp(corpus, pts);
  auto& nodes = AuditAccess::MutableNodes(&index);
  ASSERT_FALSE(nodes[0].IsLeaf());
  auto& registries = AuditAccess::MutableChildTuples(&nodes[0].dir);
  ASSERT_FALSE(registries.empty());
  // Every document carries {0, 1}, both large at the root, so the pair
  // tuple is realized in every non-empty child: emptying the registry must
  // lose it.
  ASSERT_FALSE(registries[0].empty());
  registries[0] = {};

  const AuditReport report = AuditIndex(index, NoSerialization());
  EXPECT_TRUE(report.Has(AuditCheck::kDirectoryTuples)) << report.ToString();
}

TEST(AuditCorruption, WrongLevelIsCaught) {
  const Corpus corpus = SharedPairCorpus(256);
  const auto pts = GridPoints(256);
  OrpKwIndex<2> index = BuildOrp(corpus, pts);
  auto& nodes = AuditAccess::MutableNodes(&index);
  ASSERT_GT(nodes.size(), 1u);
  nodes[1].level = static_cast<int16_t>(nodes[1].level + 1);

  const AuditReport report = AuditIndex(index, NoSerialization());
  EXPECT_TRUE(report.Has(AuditCheck::kTreeStructure)) << report.ToString();
}

TEST(AuditCorruption, DimRedFanoutDriftIsCaught) {
  Rng rng(8105);
  CorpusSpec spec;
  spec.num_objects = 600;
  spec.vocab_size = 50;
  const Corpus corpus = GenerateCorpus(spec, &rng);
  const auto pts = GeneratePoints<3>(600, PointDistribution::kUniform, &rng);
  FrameworkOptions opt;
  opt.k = 2;
  DimRedOrpKwIndex<3> index(pts, &corpus, opt);
  auto& nodes = AuditAccess::MutableNodes(&index);
  bool corrupted = false;
  for (auto& node : nodes) {
    if (!node.children.empty()) {
      node.fanout += 2;  // Off the f_u = 2*2^(k^level) schedule.
      corrupted = true;
      break;
    }
  }
  ASSERT_TRUE(corrupted);
  const AuditReport report = AuditIndex(index, NoSerialization());
  EXPECT_TRUE(report.Has(AuditCheck::kFanoutSchedule)) << report.ToString();
}

TEST(AuditCorruption, KdTreeLooseBoundsAreCaught) {
  Rng rng(8106);
  const auto pts = GeneratePoints<2>(300, PointDistribution::kUniform, &rng);
  KdTree<2> tree{std::span<const Point<2>>(pts)};
  auto& nodes = AuditAccess::MutableNodes(&tree);
  nodes[0].bounds.hi[0] += 10.0;  // No longer tight.

  const AuditReport report = audit::AuditKdTree(tree);
  EXPECT_TRUE(report.Has(AuditCheck::kCellGeometry)) << report.ToString();
}

TEST(AuditCorruption, IntervalTreeShiftedCenterIsCaught) {
  Rng rng(8107);
  const auto ivs = GenerateRects<1>(200, PointDistribution::kUniform, 0.05,
                                    &rng);
  IntervalTree<double> tree{std::span<const Box<1>>(ivs)};
  auto& nodes = AuditAccess::MutableNodes(&tree);
  nodes[0].center += 100.0;  // Outside every stored interval.

  const AuditReport report = audit::AuditIntervalTree(tree);
  EXPECT_TRUE(report.Has(AuditCheck::kCellGeometry)) << report.ToString();
}

// ---------------------------------------------------------------------------
// Report plumbing.
// ---------------------------------------------------------------------------

TEST(AuditReportTest, CapsStoredViolationsButCountsAll) {
  AuditReport report;
  for (int i = 0; i < 200; ++i) {
    report.Add(AuditCheck::kTreeStructure, i, "violation %d", i);
  }
  EXPECT_EQ(report.total_violations(), 200u);
  EXPECT_LE(report.violations().size(), AuditReport::kMaxStored);
  EXPECT_EQ(report.CountOf(AuditCheck::kTreeStructure), 200u);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.ToString().find("tree-structure"), std::string::npos);
}

TEST(AuditReportTest, MergePrefixesAndAccumulates) {
  AuditReport inner;
  inner.nodes_checked = 3;
  inner.Add(AuditCheck::kRankSpace, 1, "bad rank");
  AuditReport outer;
  outer.nodes_checked = 2;
  outer.Merge(inner, "secondary: ");
  EXPECT_EQ(outer.nodes_checked, 5u);
  EXPECT_EQ(outer.CountOf(AuditCheck::kRankSpace), 1u);
  ASSERT_EQ(outer.violations().size(), 1u);
  EXPECT_NE(outer.violations()[0].message.find("secondary: bad rank"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// At scale: every family audits clean at N >= 10^5 (N = total verbose-set
// weight), the acceptance bar for the invariant gate.
// ---------------------------------------------------------------------------

TEST(AuditFlat, CleanFlatContainerAuditsClean) {
  const Corpus corpus = SharedPairCorpus(256);
  const auto pts = GridPoints(256);
  const OrpKwIndex<2> index = BuildOrp(corpus, pts);
  std::ostringstream out;
  index.SaveFlat(&out);
  const auto file = MmapFile::FromBytes(out.str());
  const AuditReport report = audit::AuditFlatFile<OrpKwIndex<2>>(*file);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(AuditFlat, CorruptedRootOffsetIsCaughtAsFlatLayout) {
  const Corpus corpus = SharedPairCorpus(256);
  const auto pts = GridPoints(256);
  const OrpKwIndex<2> index = BuildOrp(corpus, pts);
  std::ostringstream out;
  index.SaveFlat(&out);
  std::string bytes = out.str();
  // Point the header's root_offset past the end of the container: the exact
  // corruption a bit flip or truncated copy would produce. The audit must
  // attribute it to the flat-layout class, not crash or mislabel it.
  FlatHeader header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  header.root_offset = header.total_bytes + kFlatAlignment;
  std::memcpy(bytes.data(), &header, sizeof(header));

  const auto file = MmapFile::FromBytes(bytes);
  const AuditReport report = audit::AuditFlatFile<OrpKwIndex<2>>(*file);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.Has(AuditCheck::kFlatLayout)) << report.ToString();
  EXPECT_EQ(report.total_violations(),
            report.CountOf(AuditCheck::kFlatLayout))
      << "flat corruption must not masquerade as another class: "
      << report.ToString();
}

TEST(AuditFlat, CorruptedSlabCountIsCaughtAsFlatLayout) {
  const Corpus corpus = SharedPairCorpus(256);
  const auto pts = GridPoints(256);
  const OrpKwIndex<2> index = BuildOrp(corpus, pts);
  std::ostringstream out;
  index.SaveFlat(&out);
  std::string bytes = out.str();
  // Blow up a SlabRef count inside the root POD: offsets stay plausible but
  // the slab would run past the container, which bounds checking must catch.
  FlatHeader header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  using Root = OrpKwIndex<2>::FlatRoot;
  ASSERT_LE(header.root_offset + sizeof(Root), bytes.size());
  Root root;
  std::memcpy(&root, bytes.data() + header.root_offset, sizeof(root));
  root.rank_points.count = header.total_bytes;  // Beyond the file.
  std::memcpy(bytes.data() + header.root_offset, &root, sizeof(root));

  const auto file = MmapFile::FromBytes(bytes);
  const AuditReport report = audit::AuditFlatFile<OrpKwIndex<2>>(*file);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.Has(AuditCheck::kFlatLayout)) << report.ToString();
}

TEST(AuditAtScale, AllFamiliesCleanAtHundredThousandWeight) {
  Rng rng(8108);
  CorpusSpec spec;
  spec.num_objects = 24000;
  spec.vocab_size = 600;
  const Corpus corpus = GenerateCorpus(spec, &rng);
  ASSERT_GE(corpus.total_weight(), 100000u);

  FrameworkOptions opt;
  opt.k = 2;
  {
    const auto pts =
        GeneratePoints<2>(spec.num_objects, PointDistribution::kUniform,
                          &rng);
    const OrpKwIndex<2> index(pts, &corpus, opt);
    const AuditReport report = AuditIndex(index);
    EXPECT_TRUE(report.ok()) << report.ToString();
    EXPECT_EQ(report.objects_checked, spec.num_objects);
  }
  {
    const auto pts =
        GeneratePoints<3>(spec.num_objects, PointDistribution::kClustered,
                          &rng);
    const DimRedOrpKwIndex<3> index(pts, &corpus, opt);
    const AuditReport report = AuditIndex(index);
    EXPECT_TRUE(report.ok()) << report.ToString();
  }
  {
    const auto pts =
        GeneratePoints<2>(spec.num_objects, PointDistribution::kDiagonal,
                          &rng);
    const SpKwBoxIndex<2> index(pts, &corpus, opt);
    const AuditReport report = AuditIndex(index);
    EXPECT_TRUE(report.ok()) << report.ToString();
  }
  {
    const auto rects = GenerateRects<1>(
        spec.num_objects, PointDistribution::kUniform, 0.02, &rng);
    const RrKwIndex<1> index(rects, &corpus, opt);
    const AuditReport report = AuditIndex(index);
    EXPECT_TRUE(report.ok()) << report.ToString();
  }
}

}  // namespace
}  // namespace kwsc
