// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Batched query engine: sharding a batch across threads must be invisible —
// per-query result vectors (including emission order) equal to per-query
// Query calls, and aggregate QueryStats equal to the sequentially
// accumulated totals, for every thread count.

#include "core/query_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.h"

#include "common/random.h"
#include "core/orp_kw.h"
#include "core/rr_kw.h"
#include "test_util.h"
#include "text/corpus.h"
#include "workload/generator.h"

namespace kwsc {
namespace {

TEST(QueryEngine, BatchMatchesPerQueryAnswersAndStats) {
  Rng rng(8201);
  CorpusSpec spec;
  spec.num_objects = 2000;
  spec.vocab_size = 120;
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<2>(2000, PointDistribution::kClustered, &rng);
  FrameworkOptions opt;
  opt.k = 2;
  OrpKwIndex<2> index(pts, &corpus, opt);

  std::vector<BatchQuery<Box<2>>> batch;
  for (int i = 0; i < 48; ++i) {
    batch.push_back(
        {GenerateBoxQuery(std::span<const Point<2>>(pts),
                          rng.UniformDouble(0.01, 0.4), &rng),
         PickQueryKeywords(corpus, 2, KeywordPick::kCooccurring, &rng)});
  }

  // Reference: per-query calls threading one QueryStats through all of them.
  std::vector<std::vector<ObjectId>> expected;
  QueryStats expected_stats;
  for (const auto& q : batch) {
    expected.push_back(index.Query(q.region, q.keywords, &expected_stats));
  }

  for (int threads : {1, 2, 4, 8}) {
    QueryEngine<OrpKwIndex<2>> engine(&index, threads);
    const auto result = engine.Run(batch);
    ASSERT_EQ(result.rows.size(), batch.size()) << "threads=" << threads;
    for (size_t i = 0; i < batch.size(); ++i) {
      ASSERT_EQ(result.rows[i], expected[i])
          << "threads=" << threads << " query " << i;
    }
    EXPECT_EQ(result.stats.results, expected_stats.results);
    EXPECT_EQ(result.stats.nodes_visited, expected_stats.nodes_visited);
    EXPECT_EQ(result.stats.pivot_checks, expected_stats.pivot_checks);
    EXPECT_EQ(result.stats.list_scanned, expected_stats.list_scanned);
    EXPECT_EQ(result.stats.tuple_pruned, expected_stats.tuple_pruned);
    EXPECT_EQ(result.stats.geom_pruned, expected_stats.geom_pruned);
    EXPECT_FALSE(result.stats.budget_exhausted);
    EXPECT_GE(result.wall_micros, 0.0);
  }
}

std::string StatsKey(const QueryStats& s) {
  std::ostringstream out;
  out << s.nodes_visited << "," << s.covered_nodes << "," << s.crossing_nodes
      << "," << s.pivot_checks << "," << s.list_scanned << "," << s.results
      << "," << s.tuple_pruned << "," << s.geom_pruned << ","
      << s.covered_work << "," << s.crossing_work << "," << s.type1_nodes
      << "," << s.type2_nodes << "," << s.budget_exhausted << ",[";
  for (uint32_t v : s.type2_per_level) out << v << ";";
  out << "]";
  return out.str();
}

// The determinism contract of the observability layer: on the same batch,
// the merged work histogram (per-query objects examined) and the merged
// QueryStats are byte-identical for every thread count, and the latency
// histogram always carries exactly one sample per query.
TEST(QueryEngine, MergedHistogramsAndStatsIdenticalAcrossThreadCounts) {
  Rng rng(8205);
  CorpusSpec spec;
  spec.num_objects = 1500;
  spec.vocab_size = 100;
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<2>(1500, PointDistribution::kClustered, &rng);
  FrameworkOptions opt;
  opt.k = 2;
  OrpKwIndex<2> index(pts, &corpus, opt);

  std::vector<BatchQuery<Box<2>>> batch;
  for (int i = 0; i < 64; ++i) {
    batch.push_back(
        {GenerateBoxQuery(std::span<const Point<2>>(pts),
                          rng.UniformDouble(0.01, 0.3), &rng),
         PickQueryKeywords(corpus, 2,
                           i % 2 == 0 ? KeywordPick::kFrequent
                                      : KeywordPick::kCooccurring,
                           &rng)});
  }

  std::string reference_work;
  std::string reference_stats;
  for (int threads : {1, 2, 8}) {
    QueryEngine<OrpKwIndex<2>> engine(&index, threads);
    const auto result = engine.Run(batch);
    const std::string work = result.work.DebugString();
    const std::string stats = StatsKey(result.stats);
    if (threads == 1) {
      reference_work = work;
      reference_stats = stats;
      EXPECT_GT(result.work.count(), 0u);
    } else {
      EXPECT_EQ(work, reference_work) << "threads=" << threads;
      EXPECT_EQ(stats, reference_stats) << "threads=" << threads;
    }
    // Latency is wall-clock (not value-deterministic), but its shape is:
    // one sample per query, every shard reporting, totals reconciling.
    EXPECT_EQ(result.latency.count(), batch.size()) << "threads=" << threads;
    const size_t expected_shards =
        std::min(static_cast<size_t>(engine.num_threads()), batch.size());
    ASSERT_EQ(result.shard_wall_micros.size(), expected_shards)
        << "threads=" << threads;
    for (double shard_us : result.shard_wall_micros) {
      EXPECT_GE(shard_us, 0.0);
    }
    EXPECT_GE(result.wall_micros, 0.0);
    EXPECT_EQ(result.budget_exhaustions, 0u);
    EXPECT_FALSE(result.trace.enabled);  // Tracing is off by default.
    EXPECT_TRUE(result.trace.queries.empty());
  }
}

// Tracing changes how stats are accumulated (per-query snapshots folded in
// order) but must not change any observable outcome, and the trace itself
// must decompose the batch exactly.
TEST(QueryEngine, TracingIsInvisibleToResultsAndStats) {
  Rng rng(8206);
  CorpusSpec spec;
  spec.num_objects = 800;
  spec.vocab_size = 80;
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<2>(800, PointDistribution::kUniform, &rng);
  FrameworkOptions opt;
  opt.k = 2;
  OrpKwIndex<2> index(pts, &corpus, opt);

  std::vector<BatchQuery<Box<2>>> batch;
  for (int i = 0; i < 24; ++i) {
    batch.push_back(
        {GenerateBoxQuery(std::span<const Point<2>>(pts), 0.2, &rng),
         PickQueryKeywords(corpus, 2, KeywordPick::kFrequent, &rng)});
  }

  QueryEngine<OrpKwIndex<2>> plain(&index, 2);
  const auto expected = plain.Run(batch);

  FrameworkOptions traced_opt = opt;
  traced_opt.num_threads = 2;
  traced_opt.enable_tracing = true;
  QueryEngine<OrpKwIndex<2>> traced(&index, traced_opt);
  ASSERT_TRUE(traced.tracing_enabled());
  const auto result = traced.Run(batch);

  ASSERT_EQ(result.rows.size(), expected.rows.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(result.rows[i], expected.rows[i]) << "query " << i;
  }
  EXPECT_EQ(StatsKey(result.stats), StatsKey(expected.stats));
  EXPECT_EQ(result.work.DebugString(), expected.work.DebugString());

  // The trace has one span per query, in batch order (contiguous shards
  // merged in shard order), whose stats snapshots sum to the aggregate.
  ASSERT_TRUE(result.trace.enabled);
  ASSERT_EQ(result.trace.queries.size(), batch.size());
  QueryStats summed;
  for (size_t i = 0; i < result.trace.queries.size(); ++i) {
    const auto& span = result.trace.queries[i];
    EXPECT_EQ(span.query_index, i);
    EXPECT_GE(span.duration_micros, 0.0);
    MergeQueryStats(span.stats, &summed);
  }
  EXPECT_EQ(StatsKey(summed), StatsKey(result.stats));
  ASSERT_EQ(result.trace.phases.size(), 3u);
  EXPECT_EQ(result.trace.phases[0].name, "setup");
  EXPECT_EQ(result.trace.phases[1].name, "execute");
  EXPECT_EQ(result.trace.phases[2].name, "merge");
}

// The registry accumulates engine.* metrics across batches.
TEST(QueryEngine, RegistryAccumulatesAcrossRuns) {
  Rng rng(8207);
  CorpusSpec spec;
  spec.num_objects = 300;
  spec.vocab_size = 50;
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<2>(300, PointDistribution::kUniform, &rng);
  FrameworkOptions opt;
  opt.k = 2;
  OrpKwIndex<2> index(pts, &corpus, opt);

  std::vector<BatchQuery<Box<2>>> batch;
  for (int i = 0; i < 10; ++i) {
    batch.push_back(
        {GenerateBoxQuery(std::span<const Point<2>>(pts), 0.25, &rng),
         PickQueryKeywords(corpus, 2, KeywordPick::kFrequent, &rng)});
  }

  obs::MetricsRegistry registry;
  QueryEngine<OrpKwIndex<2>> engine(&index, opt, &registry);
  engine.Run(batch);
  engine.Run(batch);
  EXPECT_EQ(registry.CounterValue("engine.batches"), 2u);
  EXPECT_EQ(registry.CounterValue("engine.queries"), 20u);
  EXPECT_EQ(registry.CounterValue("engine.ops_budget_exhausted"), 0u);
  EXPECT_EQ(registry.histograms().at("engine.query_latency_ns").count(), 20u);
  EXPECT_EQ(registry.histograms().at("engine.query_work_objects").count(),
            20u);
}

TEST(QueryEngine, EmptyBatchStillCountsInRegistry) {
  // Regression: the empty-batch early return used to skip the registry
  // update entirely, so engine.batches undercounted relative to Run calls.
  Rng rng(8212);
  CorpusSpec spec;
  spec.num_objects = 64;
  spec.vocab_size = 30;
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<2>(64, PointDistribution::kUniform, &rng);
  FrameworkOptions opt;
  opt.k = 2;
  OrpKwIndex<2> index(pts, &corpus, opt);

  obs::MetricsRegistry registry;
  QueryEngine<OrpKwIndex<2>> engine(&index, opt, &registry);
  engine.Run({});
  EXPECT_EQ(registry.CounterValue("engine.batches"), 1u);
  EXPECT_EQ(registry.CounterValue("engine.queries"), 0u);

  std::vector<BatchQuery<Box<2>>> batch;
  for (int i = 0; i < 2; ++i) {
    batch.push_back(
        {GenerateBoxQuery(std::span<const Point<2>>(pts), 0.25, &rng),
         PickQueryKeywords(corpus, 2, KeywordPick::kFrequent, &rng)});
  }
  engine.Run(batch);
  engine.Run({});
  EXPECT_EQ(registry.CounterValue("engine.batches"), 3u);
  EXPECT_EQ(registry.CounterValue("engine.queries"), 2u);
}

TEST(QueryEngine, ShardBoundaryMathEdgeCases) {
  // RunShard's contiguous block partition [s*n/shards, (s+1)*n/shards):
  // exercise n < threads, n == threads, and n == 1 and pin the exact
  // per-query answers (every boundary bug shows up as a skipped or
  // double-run query).
  Rng rng(8213);
  CorpusSpec spec;
  spec.num_objects = 400;
  spec.vocab_size = 50;
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<2>(400, PointDistribution::kClustered, &rng);
  FrameworkOptions opt;
  opt.k = 2;
  OrpKwIndex<2> index(pts, &corpus, opt);

  std::vector<BatchQuery<Box<2>>> pool;
  for (int i = 0; i < 8; ++i) {
    pool.push_back(
        {GenerateBoxQuery(std::span<const Point<2>>(pts), 0.3, &rng),
         PickQueryKeywords(corpus, 2, KeywordPick::kCooccurring, &rng)});
  }
  struct Case {
    size_t batch_size;
    int threads;
  };
  for (const Case c : {Case{3, 8}, Case{4, 4}, Case{1, 4}, Case{1, 1},
                       Case{7, 4}}) {
    const std::span<const BatchQuery<Box<2>>> batch(pool.data(),
                                                    c.batch_size);
    QueryEngine<OrpKwIndex<2>> engine(&index, c.threads);
    const auto result = engine.Run(batch);
    ASSERT_EQ(result.rows.size(), c.batch_size)
        << "n=" << c.batch_size << " threads=" << c.threads;
    ASSERT_EQ(result.latency.count(), c.batch_size);
    // One shard per thread, capped at the batch size.
    ASSERT_EQ(result.shard_wall_micros.size(),
              std::min<size_t>(c.batch_size, c.threads));
    for (size_t i = 0; i < c.batch_size; ++i) {
      EXPECT_EQ(result.rows[i],
                index.Query(batch[i].region, batch[i].keywords))
          << "n=" << c.batch_size << " threads=" << c.threads << " query "
          << i;
    }
  }
}

TEST(QueryEngine, EmptyBatch) {
  Rng rng(8202);
  CorpusSpec spec;
  spec.num_objects = 64;
  spec.vocab_size = 30;
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<2>(64, PointDistribution::kUniform, &rng);
  FrameworkOptions opt;
  opt.k = 2;
  OrpKwIndex<2> index(pts, &corpus, opt);

  QueryEngine<OrpKwIndex<2>> engine(&index, 4);
  const auto result = engine.Run({});
  EXPECT_TRUE(result.rows.empty());
  EXPECT_EQ(result.stats.nodes_visited, 0u);
  EXPECT_EQ(result.stats.results, 0u);
}

TEST(QueryEngine, BatchSmallerThanThreadCount) {
  Rng rng(8203);
  CorpusSpec spec;
  spec.num_objects = 500;
  spec.vocab_size = 60;
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<2>(500, PointDistribution::kUniform, &rng);
  FrameworkOptions opt;
  opt.k = 2;
  OrpKwIndex<2> index(pts, &corpus, opt);

  std::vector<BatchQuery<Box<2>>> batch;
  for (int i = 0; i < 3; ++i) {
    batch.push_back(
        {GenerateBoxQuery(std::span<const Point<2>>(pts), 0.3, &rng),
         PickQueryKeywords(corpus, 2, KeywordPick::kFrequent, &rng)});
  }
  QueryEngine<OrpKwIndex<2>> engine(&index, 8);  // More threads than queries.
  const auto result = engine.Run(batch);
  ASSERT_EQ(result.rows.size(), 3u);
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(result.rows[i], index.Query(batch[i].region, batch[i].keywords));
  }
}

TEST(QueryEngine, WorksWithRrKwRectangles) {
  Rng rng(8204);
  CorpusSpec spec;
  spec.num_objects = 400;
  spec.vocab_size = 60;
  Corpus corpus = GenerateCorpus(spec, &rng);
  std::vector<Box<1>> rects;
  for (uint32_t i = 0; i < 400; ++i) {
    const double lo = rng.UniformDouble(0.0, 0.9);
    Box<1> r;
    r.lo[0] = lo;
    r.hi[0] = lo + rng.UniformDouble(0.0, 0.1);
    rects.push_back(r);
  }
  FrameworkOptions opt;
  opt.k = 2;
  RrKwIndex<1> index(rects, &corpus, opt);

  std::vector<BatchQuery<Box<1>>> batch;
  for (int i = 0; i < 16; ++i) {
    const double lo = rng.UniformDouble(0.0, 0.8);
    Box<1> q;
    q.lo[0] = lo;
    q.hi[0] = lo + rng.UniformDouble(0.05, 0.2);
    batch.push_back(
        {q, PickQueryKeywords(corpus, 2, KeywordPick::kFrequent, &rng)});
  }
  QueryEngine<RrKwIndex<1>> engine(&index, 4);
  const auto result = engine.Run(batch);
  ASSERT_EQ(result.rows.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(result.rows[i], index.Query(batch[i].region, batch[i].keywords))
        << "query " << i;
  }
}

}  // namespace
}  // namespace kwsc
