// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Batched query engine: sharding a batch across threads must be invisible —
// per-query result vectors (including emission order) equal to per-query
// Query calls, and aggregate QueryStats equal to the sequentially
// accumulated totals, for every thread count.

#include "core/query_engine.h"

#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "common/random.h"
#include "core/orp_kw.h"
#include "core/rr_kw.h"
#include "test_util.h"
#include "text/corpus.h"
#include "workload/generator.h"

namespace kwsc {
namespace {

TEST(QueryEngine, BatchMatchesPerQueryAnswersAndStats) {
  Rng rng(8201);
  CorpusSpec spec;
  spec.num_objects = 2000;
  spec.vocab_size = 120;
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<2>(2000, PointDistribution::kClustered, &rng);
  FrameworkOptions opt;
  opt.k = 2;
  OrpKwIndex<2> index(pts, &corpus, opt);

  std::vector<BatchQuery<Box<2>>> batch;
  for (int i = 0; i < 48; ++i) {
    batch.push_back(
        {GenerateBoxQuery(std::span<const Point<2>>(pts),
                          rng.UniformDouble(0.01, 0.4), &rng),
         PickQueryKeywords(corpus, 2, KeywordPick::kCooccurring, &rng)});
  }

  // Reference: per-query calls threading one QueryStats through all of them.
  std::vector<std::vector<ObjectId>> expected;
  QueryStats expected_stats;
  for (const auto& q : batch) {
    expected.push_back(index.Query(q.region, q.keywords, &expected_stats));
  }

  for (int threads : {1, 2, 4, 8}) {
    QueryEngine<OrpKwIndex<2>> engine(&index, threads);
    const auto result = engine.Run(batch);
    ASSERT_EQ(result.rows.size(), batch.size()) << "threads=" << threads;
    for (size_t i = 0; i < batch.size(); ++i) {
      ASSERT_EQ(result.rows[i], expected[i])
          << "threads=" << threads << " query " << i;
    }
    EXPECT_EQ(result.stats.results, expected_stats.results);
    EXPECT_EQ(result.stats.nodes_visited, expected_stats.nodes_visited);
    EXPECT_EQ(result.stats.pivot_checks, expected_stats.pivot_checks);
    EXPECT_EQ(result.stats.list_scanned, expected_stats.list_scanned);
    EXPECT_EQ(result.stats.tuple_pruned, expected_stats.tuple_pruned);
    EXPECT_EQ(result.stats.geom_pruned, expected_stats.geom_pruned);
    EXPECT_FALSE(result.stats.budget_exhausted);
    EXPECT_GE(result.wall_micros, 0.0);
  }
}

TEST(QueryEngine, EmptyBatch) {
  Rng rng(8202);
  CorpusSpec spec;
  spec.num_objects = 64;
  spec.vocab_size = 30;
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<2>(64, PointDistribution::kUniform, &rng);
  FrameworkOptions opt;
  opt.k = 2;
  OrpKwIndex<2> index(pts, &corpus, opt);

  QueryEngine<OrpKwIndex<2>> engine(&index, 4);
  const auto result = engine.Run({});
  EXPECT_TRUE(result.rows.empty());
  EXPECT_EQ(result.stats.nodes_visited, 0u);
  EXPECT_EQ(result.stats.results, 0u);
}

TEST(QueryEngine, BatchSmallerThanThreadCount) {
  Rng rng(8203);
  CorpusSpec spec;
  spec.num_objects = 500;
  spec.vocab_size = 60;
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<2>(500, PointDistribution::kUniform, &rng);
  FrameworkOptions opt;
  opt.k = 2;
  OrpKwIndex<2> index(pts, &corpus, opt);

  std::vector<BatchQuery<Box<2>>> batch;
  for (int i = 0; i < 3; ++i) {
    batch.push_back(
        {GenerateBoxQuery(std::span<const Point<2>>(pts), 0.3, &rng),
         PickQueryKeywords(corpus, 2, KeywordPick::kFrequent, &rng)});
  }
  QueryEngine<OrpKwIndex<2>> engine(&index, 8);  // More threads than queries.
  const auto result = engine.Run(batch);
  ASSERT_EQ(result.rows.size(), 3u);
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(result.rows[i], index.Query(batch[i].region, batch[i].keywords));
  }
}

TEST(QueryEngine, WorksWithRrKwRectangles) {
  Rng rng(8204);
  CorpusSpec spec;
  spec.num_objects = 400;
  spec.vocab_size = 60;
  Corpus corpus = GenerateCorpus(spec, &rng);
  std::vector<Box<1>> rects;
  for (uint32_t i = 0; i < 400; ++i) {
    const double lo = rng.UniformDouble(0.0, 0.9);
    Box<1> r;
    r.lo[0] = lo;
    r.hi[0] = lo + rng.UniformDouble(0.0, 0.1);
    rects.push_back(r);
  }
  FrameworkOptions opt;
  opt.k = 2;
  RrKwIndex<1> index(rects, &corpus, opt);

  std::vector<BatchQuery<Box<1>>> batch;
  for (int i = 0; i < 16; ++i) {
    const double lo = rng.UniformDouble(0.0, 0.8);
    Box<1> q;
    q.lo[0] = lo;
    q.hi[0] = lo + rng.UniformDouble(0.05, 0.2);
    batch.push_back(
        {q, PickQueryKeywords(corpus, 2, KeywordPick::kFrequent, &rng)});
  }
  QueryEngine<RrKwIndex<1>> engine(&index, 4);
  const auto result = engine.Run(batch);
  ASSERT_EQ(result.rows.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(result.rows[i], index.Query(batch[i].region, batch[i].keywords))
        << "query " << i;
  }
}

}  // namespace
}  // namespace kwsc
