// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Round-trip tests for the binary persistence layer: archives, corpus, and
// the full ORP-KW index (including its NodeDirectory contents).

#include <gtest/gtest.h>

#include <sstream>

#include "common/random.h"
#include "common/serialize.h"
#include "core/orp_kw.h"
#include "test_util.h"
#include "text/corpus.h"
#include "workload/generator.h"

namespace kwsc {
namespace {

TEST(Archive, PodAndVecRoundTrip) {
  std::stringstream stream;
  {
    OutputArchive ar(&stream);
    ar.Magic("TEST", 7);
    ar.Pod<uint32_t>(42);
    ar.Pod<double>(3.25);
    ar.Vec(std::vector<uint64_t>{1, 2, 3});
    ar.Vec(std::vector<uint16_t>{});
    ASSERT_TRUE(ar.ok());
  }
  InputArchive ar(&stream);
  EXPECT_EQ(ar.Magic("TEST"), 7u);
  EXPECT_EQ(ar.Pod<uint32_t>(), 42u);
  EXPECT_EQ(ar.Pod<double>(), 3.25);
  EXPECT_EQ(ar.Vec<uint64_t>(), (std::vector<uint64_t>{1, 2, 3}));
  EXPECT_TRUE(ar.Vec<uint16_t>().empty());
}

TEST(ArchiveDeath, WrongMagicAborts) {
  std::stringstream stream;
  {
    OutputArchive ar(&stream);
    ar.Magic("AAAA", 1);
  }
  InputArchive ar(&stream);
  EXPECT_DEATH(ar.Magic("BBBB"), "magic mismatch");
}

TEST(ArchiveDeath, TruncatedInputAborts) {
  std::stringstream stream;
  {
    OutputArchive ar(&stream);
    ar.Pod<uint16_t>(1);
  }
  InputArchive ar(&stream);
  EXPECT_DEATH(ar.Pod<uint64_t>(), "truncated");
}

TEST(ArchiveDeath, VecLengthBeyondStreamAborts) {
  // A corrupt archive declaring a (plausible-looking) length far beyond the
  // bytes actually present must die in the remaining-bytes clamp, before
  // the allocation of size * sizeof(T).
  std::stringstream stream;
  {
    OutputArchive ar(&stream);
    ar.Pod<uint64_t>(uint64_t{1} << 30);  // claims 2^30 elements...
    ar.Pod<uint32_t>(7);                  // ...but only 4 bytes follow
  }
  InputArchive ar(&stream);
  EXPECT_DEATH(ar.Vec<uint64_t>(), "exceeds remaining archive bytes");
}

TEST(ArchiveDeath, VecLengthSlightlyBeyondStreamAborts) {
  // Off-by-one at the boundary: N elements declared, N-1 present.
  std::stringstream stream;
  {
    OutputArchive ar(&stream);
    ar.Pod<uint64_t>(4);
    ar.Pod<uint32_t>(1);
    ar.Pod<uint32_t>(2);
    ar.Pod<uint32_t>(3);
  }
  InputArchive ar(&stream);
  EXPECT_DEATH(ar.Vec<uint32_t>(), "exceeds remaining archive bytes");
}

TEST(Archive, BufferedWriterMatchesUnbufferedByteForByte) {
  // The coalescing buffer is a pure transport optimization: the byte stream
  // must equal one produced by writing each value straight to the stream.
  std::stringstream buffered;
  std::stringstream raw;
  std::vector<uint64_t> big(20000);
  for (size_t i = 0; i < big.size(); ++i) big[i] = i * 2654435761u;
  {
    OutputArchive ar(&buffered);
    ar.Magic("TEST", 3);
    for (uint32_t i = 0; i < 5000; ++i) ar.Pod<uint32_t>(i);  // Many tiny Pods.
    ar.Vec(big);  // One payload far beyond the flush threshold.
    ar.Pod<uint8_t>(0xAB);
  }
  {
    raw.write("TEST", 4);
    const uint32_t version = 3;
    raw.write(reinterpret_cast<const char*>(&version), sizeof(version));
    for (uint32_t i = 0; i < 5000; ++i) {
      raw.write(reinterpret_cast<const char*>(&i), sizeof(i));
    }
    const uint64_t count = big.size();
    raw.write(reinterpret_cast<const char*>(&count), sizeof(count));
    raw.write(reinterpret_cast<const char*>(big.data()),
              static_cast<std::streamsize>(big.size() * sizeof(uint64_t)));
    const uint8_t tail = 0xAB;
    raw.write(reinterpret_cast<const char*>(&tail), sizeof(tail));
  }
  EXPECT_EQ(buffered.str(), raw.str());
}

TEST(Archive, FlushOrdersBufferedBytesBeforeRawStreamWrites) {
  // The nested-save hazard: a live archive plus a direct stream write must
  // produce bytes in program order once Flush() is called in between. This
  // is the contract LinfNnIndex::Save (archive header, then engine save to
  // the same stream) depends on.
  std::stringstream stream;
  {
    OutputArchive ar(&stream);
    ar.Pod<uint32_t>(0x11111111);
    ar.Flush();
    const uint32_t nested = 0x22222222;
    stream.write(reinterpret_cast<const char*>(&nested), sizeof(nested));
    ar.Pod<uint32_t>(0x33333333);
  }
  InputArchive in(&stream);
  EXPECT_EQ(in.Pod<uint32_t>(), 0x11111111u);
  EXPECT_EQ(in.Pod<uint32_t>(), 0x22222222u);
  EXPECT_EQ(in.Pod<uint32_t>(), 0x33333333u);
}

TEST(Archive, VecLengthExactlyAtStreamEndReads) {
  std::stringstream stream;
  {
    OutputArchive ar(&stream);
    ar.Vec(std::vector<uint32_t>{1, 2, 3});
  }
  InputArchive ar(&stream);
  EXPECT_EQ(ar.Vec<uint32_t>(), (std::vector<uint32_t>{1, 2, 3}));
}

TEST(CorpusSerialize, RoundTripPreservesEverything) {
  Rng rng(171);
  CorpusSpec spec;
  spec.num_objects = 300;
  spec.vocab_size = 50;
  Corpus original = GenerateCorpus(spec, &rng);
  std::stringstream stream;
  original.Save(&stream);
  Corpus loaded = Corpus::Load(&stream);
  ASSERT_EQ(loaded.num_objects(), original.num_objects());
  EXPECT_EQ(loaded.total_weight(), original.total_weight());
  EXPECT_EQ(loaded.vocab_size(), original.vocab_size());
  for (ObjectId e = 0; e < original.num_objects(); ++e) {
    EXPECT_EQ(loaded.doc(e), original.doc(e));
  }
}

TEST(OrpKwSerialize, LoadedIndexAnswersIdentically) {
  Rng rng(172);
  CorpusSpec spec;
  spec.num_objects = 800;
  spec.vocab_size = 60;
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<2>(800, PointDistribution::kClustered, &rng);
  FrameworkOptions opt;
  opt.k = 2;
  OrpKwIndex<2> original(pts, &corpus, opt);

  std::stringstream stream;
  original.Save(&stream);
  OrpKwIndex<2> loaded = OrpKwIndex<2>::Load(&stream, &corpus);
  testing::ExpectAuditClean(loaded);

  EXPECT_EQ(loaded.num_nodes(), original.num_nodes());
  EXPECT_EQ(loaded.MemoryBytes() > 0, true);
  for (int trial = 0; trial < 25; ++trial) {
    auto q = GenerateBoxQuery(std::span<const Point<2>>(pts),
                              rng.UniformDouble(0.01, 0.7), &rng);
    auto kws = PickQueryKeywords(
        corpus, 2,
        trial % 2 == 0 ? KeywordPick::kFrequent : KeywordPick::kCooccurring,
        &rng);
    // Identical results in identical order: the loaded tree is the same
    // tree.
    EXPECT_EQ(loaded.Query(q, kws), original.Query(q, kws));
  }
}

TEST(OrpKwSerialize, RoundTripThroughRealFileViaString) {
  // The archive is a plain byte stream: string round-trip == file
  // round-trip.
  Rng rng(173);
  CorpusSpec spec;
  spec.num_objects = 100;
  spec.vocab_size = 20;
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<2>(100, PointDistribution::kUniform, &rng);
  FrameworkOptions opt;
  opt.k = 2;
  OrpKwIndex<2> original(pts, &corpus, opt);
  std::stringstream first;
  original.Save(&first);
  const std::string bytes = first.str();
  std::stringstream second(bytes);
  OrpKwIndex<2> loaded = OrpKwIndex<2>::Load(&second, &corpus);
  // Saving the loaded index reproduces the identical byte stream
  // (canonical archives).
  std::stringstream third;
  loaded.Save(&third);
  EXPECT_EQ(third.str(), bytes);
}

TEST(OrpKwSerializeDeath, CorpusMismatchRejected) {
  Rng rng(174);
  CorpusSpec spec;
  spec.num_objects = 50;
  spec.vocab_size = 10;
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<2>(50, PointDistribution::kUniform, &rng);
  FrameworkOptions opt;
  opt.k = 2;
  OrpKwIndex<2> index(pts, &corpus, opt);
  std::stringstream stream;
  index.Save(&stream);
  spec.num_objects = 51;
  Corpus other = GenerateCorpus(spec, &rng);
  EXPECT_DEATH(OrpKwIndex<2>::Load(&stream, &other), "mismatch");
}

}  // namespace
}  // namespace kwsc

// Appended round-trip coverage for the partition-substrate and NN indexes.
#include "core/nn_linf.h"
#include "core/sp_kw_box.h"

namespace kwsc {
namespace {

TEST(SpKwBoxSerialize, LoadedIndexAnswersIdentically) {
  Rng rng(175);
  CorpusSpec spec;
  spec.num_objects = 500;
  spec.vocab_size = 40;
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<2>(500, PointDistribution::kUniform, &rng);
  FrameworkOptions opt;
  opt.k = 2;
  SpKwBoxIndex<2> original(pts, &corpus, opt);
  std::stringstream stream;
  original.Save(&stream);
  SpKwBoxIndex<2> loaded = SpKwBoxIndex<2>::Load(&stream, &corpus);
  testing::ExpectAuditClean(loaded);
  for (int trial = 0; trial < 15; ++trial) {
    ConvexQuery<2> q;
    q.constraints.push_back(GenerateHalfspaceQuery(
        std::span<const Point<2>>(pts), rng.UniformDouble(0.2, 0.8), &rng));
    auto kws = PickQueryKeywords(corpus, 2, KeywordPick::kCooccurring, &rng);
    EXPECT_EQ(loaded.Query(q, kws), original.Query(q, kws));
  }
}

TEST(LinfNnSerialize, LoadedIndexAnswersIdentically) {
  Rng rng(176);
  CorpusSpec spec;
  spec.num_objects = 400;
  spec.vocab_size = 30;
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<2>(400, PointDistribution::kClustered, &rng);
  FrameworkOptions opt;
  opt.k = 2;
  LinfNnIndex<2> original(pts, &corpus, opt);
  std::stringstream stream;
  original.Save(&stream);
  LinfNnIndex<2> loaded = LinfNnIndex<2>::Load(&stream, &corpus);
  for (int trial = 0; trial < 10; ++trial) {
    Point<2> q{{rng.NextDouble(), rng.NextDouble()}};
    auto kws = PickQueryKeywords(corpus, 2, KeywordPick::kFrequent, &rng);
    const uint64_t t = 1 + rng.NextBounded(6);
    EXPECT_EQ(loaded.Query(q, t, kws), original.Query(q, t, kws));
  }
}

}  // namespace
}  // namespace kwsc
