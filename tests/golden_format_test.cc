// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Golden-format tests: the committed byte streams under tests/golden/ are
// the ground truth for the v1 archive and v2 flat formats of two persisted
// families (plus the corpus). Three properties per file:
//
//   1. Regeneration — building the golden workload today and saving it
//      produces the committed bytes exactly. Any divergence means the
//      serialization code changed the format (deliberately or not); the
//      FORMATS.lock drift gate will demand the version bump, this test
//      demands the golden refresh (tests/golden_util.h says how).
//   2. Readability — the committed files load with today's readers.
//   3. Health — every loaded index passes its deep structural audit, so the
//      goldens keep exercising the real validation paths, not just framing.

#include <fstream>
#include <sstream>
#include <string>

#include "gtest/gtest.h"

#include "audit/index_auditor.h"
#include "common/flat_arena.h"
#include "core/dynamic_index.h"
#include "golden_util.h"
#include "test_util.h"

namespace kwsc {
namespace {

#ifndef KWSC_SOURCE_DIR
#error "golden_format_test requires the KWSC_SOURCE_DIR compile definition"
#endif

std::string GoldenPath(const std::string& name) {
  return std::string(KWSC_SOURCE_DIR) + "/tests/golden/" + name;
}

std::string ReadGolden(const std::string& name) {
  std::ifstream in(GoldenPath(name), std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing golden file " << name
                         << "; regenerate: build/tests/make_golden "
                            "tests/golden";
  std::ostringstream contents;
  contents << in.rdbuf();
  return contents.str();
}

TEST(GoldenFormat, RegenerationIsByteIdentical) {
  for (const golden::GoldenFile& file : golden::RenderAll()) {
    const std::string committed = ReadGolden(file.name);
    ASSERT_FALSE(file.bytes.empty()) << file.name;
    EXPECT_EQ(committed.size(), file.bytes.size()) << file.name;
    EXPECT_TRUE(committed == file.bytes)
        << file.name
        << ": serialization output drifted from the committed golden; if "
           "the format change is deliberate, bump the version constant "
           "(src/core/format_versions.h), regenerate FORMATS.lock and the "
           "goldens (tests/golden_util.h header comment), and commit all "
           "three together";
  }
}

TEST(GoldenFormat, CorpusV1LoadsAndMatches) {
  std::istringstream in(ReadGolden("corpus_v1.bin"));
  const Corpus loaded = Corpus::Load(&in);
  const Corpus built = golden::MakeCorpus();
  ASSERT_EQ(loaded.num_objects(), built.num_objects());
  EXPECT_EQ(loaded.vocab_size(), built.vocab_size());
  for (ObjectId e = 0; e < built.num_objects(); ++e) {
    for (KeywordId w = 0; w < built.vocab_size(); ++w) {
      EXPECT_EQ(loaded.Contains(e, w), built.Contains(e, w));
    }
  }
}

TEST(GoldenFormat, OrpKwV1LoadsAuditClean) {
  const Corpus corpus = golden::MakeCorpus();
  std::istringstream in(ReadGolden("orp_kw_v1.bin"));
  const OrpKwIndex<2> loaded = OrpKwIndex<2>::Load(&in, &corpus);
  testing::ExpectAuditClean(loaded);
}

TEST(GoldenFormat, OrpKwV2LoadsAuditClean) {
  const Corpus corpus = golden::MakeCorpus();
  const auto file = MmapFile::Open(GoldenPath("orp_kw_v2.bin"));
  ASSERT_NE(file, nullptr);
  const OrpKwIndex<2> loaded = OrpKwIndex<2>::LoadFlat(file, &corpus);
  testing::ExpectAuditClean(loaded);
}

TEST(GoldenFormat, SpKwBoxV1LoadsAuditClean) {
  const Corpus corpus = golden::MakeCorpus();
  std::istringstream in(ReadGolden("sp_kw_box_v1.bin"));
  const SpKwBoxIndex<2> loaded = SpKwBoxIndex<2>::Load(&in, &corpus);
  testing::ExpectAuditClean(loaded);
}

TEST(GoldenFormat, SpKwBoxV2LoadsAuditClean) {
  const Corpus corpus = golden::MakeCorpus();
  const auto file = MmapFile::Open(GoldenPath("sp_kw_box_v2.bin"));
  ASSERT_NE(file, nullptr);
  const SpKwBoxIndex<2> loaded = SpKwBoxIndex<2>::LoadFlat(file, &corpus);
  testing::ExpectAuditClean(loaded);
}

TEST(GoldenFormat, DynamicCheckpointV1LoadsAuditCleanAndMatchesReplay) {
  std::istringstream in(ReadGolden("dynamic_checkpoint_v1.bin"));
  const auto loaded = DynamicIndex<OrpKwIndex<2>>::LoadCheckpoint(&in);
  ASSERT_NE(loaded, nullptr);
  testing::ExpectAuditClean(*loaded);
  const auto replayed = golden::MakeDynamic();
  EXPECT_EQ(loaded->num_objects(), replayed->num_objects());
  EXPECT_EQ(loaded->live_objects(), replayed->live_objects());
  // Same behaviour, and re-saving reproduces the committed bytes (levels
  // are rebuilt deterministically on load).
  const Box<2> range{Point<2>{{0, 0}}, Point<2>{{7, 6}}};
  for (KeywordId w1 = 0; w1 < 6; ++w1) {
    for (KeywordId w2 = w1 + 1; w2 < 6; ++w2) {
      const std::vector<KeywordId> kws = {w1, w2};
      EXPECT_EQ(loaded->Query(range, kws), replayed->Query(range, kws))
          << w1 << "," << w2;
    }
  }
  std::ostringstream resaved;
  loaded->SaveCheckpoint(&resaved);
  EXPECT_EQ(resaved.str(), ReadGolden("dynamic_checkpoint_v1.bin"));
}

// The queries a fresh build answers, the golden-loaded indexes must answer
// identically — format stability is only worth locking if the decoded
// structure behaves the same.
TEST(GoldenFormat, GoldenLoadedQueriesMatchFreshBuild) {
  const Corpus corpus = golden::MakeCorpus();
  const auto pts = golden::MakePoints();
  const OrpKwIndex<2> built(pts, &corpus, golden::MakeOptions());
  std::istringstream in(ReadGolden("orp_kw_v1.bin"));
  const OrpKwIndex<2> loaded = OrpKwIndex<2>::Load(&in, &corpus);
  const Box<2> range{Point<2>{{0, 0}}, Point<2>{{7, 6}}};
  // Exactly k=2 keywords per query: every unordered vocabulary pair.
  for (KeywordId w1 = 0; w1 < 6; ++w1) {
    for (KeywordId w2 = w1 + 1; w2 < 6; ++w2) {
      const std::vector<KeywordId> kws = {w1, w2};
      EXPECT_EQ(built.Query(range, kws), loaded.Query(range, kws))
          << w1 << "," << w2;
    }
  }
}

}  // namespace
}  // namespace kwsc
