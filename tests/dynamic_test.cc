// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Tests for the logarithmic-method dynamization of the ORP-KW index.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "core/dynamic_orp_kw.h"
#include "test_util.h"
#include "workload/generator.h"

namespace kwsc {
namespace {

using testing::Sorted;

TEST(DynamicOrpKw, InterleavedInsertAndQueryMatchesBruteForce) {
  Rng rng(611);
  FrameworkOptions opt;
  opt.k = 2;
  DynamicOrpKwIndex<2> dynamic(opt, /*buffer_capacity=*/32);

  std::vector<Point<2>> inserted_points;
  std::vector<Document> inserted_docs;
  CorpusSpec spec;
  spec.num_objects = 1;  // Generator used per object below.
  for (int step = 0; step < 2000; ++step) {
    // Insert one random object.
    std::vector<KeywordId> kws;
    const int len = 2 + static_cast<int>(rng.NextBounded(4));
    while (static_cast<int>(kws.size()) < len) {
      KeywordId w = static_cast<KeywordId>(rng.NextBounded(30));
      if (std::find(kws.begin(), kws.end(), w) == kws.end()) kws.push_back(w);
    }
    Point<2> p{{rng.NextDouble(), rng.NextDouble()}};
    Document doc(kws);
    const ObjectId id = dynamic.Insert(p, doc);
    EXPECT_EQ(id, static_cast<ObjectId>(step));
    inserted_points.push_back(p);
    inserted_docs.push_back(std::move(doc));

    if (step % 97 != 0) continue;
    // Query against brute force over everything inserted so far.
    Box<2> q;
    for (int dim = 0; dim < 2; ++dim) {
      double a = rng.NextDouble();
      double b = rng.NextDouble();
      q.lo[dim] = std::min(a, b);
      q.hi[dim] = std::max(a, b);
    }
    std::vector<KeywordId> query_kws = {
        static_cast<KeywordId>(rng.NextBounded(15)),
        static_cast<KeywordId>(15 + rng.NextBounded(15))};
    std::vector<ObjectId> expected;
    for (ObjectId e = 0; e < inserted_points.size(); ++e) {
      if (q.Contains(inserted_points[e]) &&
          inserted_docs[e].ContainsAll(query_kws.data(), query_kws.size())) {
        expected.push_back(e);
      }
    }
    EXPECT_EQ(Sorted(dynamic.Query(q, query_kws)), expected)
        << "step " << step;
  }
}

TEST(DynamicOrpKw, BinaryCounterLevelShape) {
  FrameworkOptions opt;
  opt.k = 2;
  const size_t buffer = 16;
  DynamicOrpKwIndex<2> dynamic(opt, buffer);
  Rng rng(612);
  for (size_t i = 0; i < 16 * buffer; ++i) {
    dynamic.Insert({{rng.NextDouble(), rng.NextDouble()}},
                   Document{static_cast<KeywordId>(i % 5),
                            static_cast<KeywordId>(5 + i % 3)});
  }
  // 16 buffers of carries = binary counter value 16 = one level at slot 4.
  EXPECT_EQ(dynamic.num_objects(), 16 * buffer);
  EXPECT_LE(dynamic.ActiveLevels(), 5u);  // log2(16) + 1.
}

TEST(DynamicOrpKw, QueryBeforeAnyCarryUsesBufferOnly) {
  FrameworkOptions opt;
  opt.k = 2;
  DynamicOrpKwIndex<2> dynamic(opt, /*buffer_capacity=*/100);
  dynamic.Insert({{0.5, 0.5}}, Document{1, 2});
  dynamic.Insert({{0.9, 0.9}}, Document{1, 3});
  EXPECT_EQ(dynamic.ActiveLevels(), 0u);
  std::vector<KeywordId> kws = {1, 2};
  auto got = dynamic.Query({{{0, 0}}, {{1, 1}}}, kws);
  EXPECT_EQ(got, (std::vector<ObjectId>{0}));
}

TEST(DynamicOrpKwDeath, EmptyDocumentRejected) {
  FrameworkOptions opt;
  opt.k = 2;
  DynamicOrpKwIndex<2> dynamic(opt);
  EXPECT_DEATH(dynamic.Insert({{0, 0}}, Document{}), "non-empty");
}

}  // namespace
}  // namespace kwsc
