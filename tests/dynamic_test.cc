// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Tests for the logarithmic-method dynamization of the ORP-KW index.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/random.h"
#include "core/dynamic_orp_kw.h"
#include "test_util.h"
#include "workload/generator.h"

namespace kwsc {
namespace {

using testing::Sorted;

TEST(DynamicOrpKw, InterleavedInsertAndQueryMatchesBruteForce) {
  Rng rng(611);
  FrameworkOptions opt;
  opt.k = 2;
  DynamicOrpKwIndex<2> dynamic(opt, /*buffer_capacity=*/32);

  std::vector<Point<2>> inserted_points;
  std::vector<Document> inserted_docs;
  CorpusSpec spec;
  spec.num_objects = 1;  // Generator used per object below.
  for (int step = 0; step < 2000; ++step) {
    // Insert one random object.
    std::vector<KeywordId> kws;
    const int len = 2 + static_cast<int>(rng.NextBounded(4));
    while (static_cast<int>(kws.size()) < len) {
      KeywordId w = static_cast<KeywordId>(rng.NextBounded(30));
      if (std::find(kws.begin(), kws.end(), w) == kws.end()) kws.push_back(w);
    }
    Point<2> p{{rng.NextDouble(), rng.NextDouble()}};
    Document doc(kws);
    const ObjectId id = dynamic.Insert(p, doc);
    EXPECT_EQ(id, static_cast<ObjectId>(step));
    inserted_points.push_back(p);
    inserted_docs.push_back(std::move(doc));

    if (step % 97 != 0) continue;
    // Query against brute force over everything inserted so far.
    Box<2> q;
    for (int dim = 0; dim < 2; ++dim) {
      double a = rng.NextDouble();
      double b = rng.NextDouble();
      q.lo[dim] = std::min(a, b);
      q.hi[dim] = std::max(a, b);
    }
    std::vector<KeywordId> query_kws = {
        static_cast<KeywordId>(rng.NextBounded(15)),
        static_cast<KeywordId>(15 + rng.NextBounded(15))};
    std::vector<ObjectId> expected;
    for (ObjectId e = 0; e < inserted_points.size(); ++e) {
      if (q.Contains(inserted_points[e]) &&
          inserted_docs[e].ContainsAll(query_kws.data(), query_kws.size())) {
        expected.push_back(e);
      }
    }
    EXPECT_EQ(Sorted(dynamic.Query(q, query_kws)), expected)
        << "step " << step;
  }
}

TEST(DynamicOrpKw, BinaryCounterLevelShape) {
  FrameworkOptions opt;
  opt.k = 2;
  const size_t buffer = 16;
  DynamicOrpKwIndex<2> dynamic(opt, buffer);
  Rng rng(612);
  for (size_t i = 0; i < 16 * buffer; ++i) {
    dynamic.Insert({{rng.NextDouble(), rng.NextDouble()}},
                   Document{static_cast<KeywordId>(i % 5),
                            static_cast<KeywordId>(5 + i % 3)});
  }
  // 16 buffers of carries = binary counter value 16 = one level at slot 4.
  EXPECT_EQ(dynamic.num_objects(), 16 * buffer);
  EXPECT_LE(dynamic.ActiveLevels(), 5u);  // log2(16) + 1.
}

TEST(DynamicOrpKw, QueryBeforeAnyCarryUsesBufferOnly) {
  FrameworkOptions opt;
  opt.k = 2;
  DynamicOrpKwIndex<2> dynamic(opt, /*buffer_capacity=*/100);
  dynamic.Insert({{0.5, 0.5}}, Document{1, 2});
  dynamic.Insert({{0.9, 0.9}}, Document{1, 3});
  EXPECT_EQ(dynamic.ActiveLevels(), 0u);
  std::vector<KeywordId> kws = {1, 2};
  auto got = dynamic.Query({{{0, 0}}, {{1, 1}}}, kws);
  EXPECT_EQ(got, (std::vector<ObjectId>{0}));
}

TEST(DynamicOrpKw, MemoryBytesCountsBufferedObjectsOnce) {
  // Regression: buffered objects used to be held (and charged) twice — once
  // in the buffer's own copies, once in the global registry. Inserting one
  // object with a large document into an empty buffer must grow the
  // footprint by about the document's bytes, not twice that.
  FrameworkOptions opt;
  opt.k = 2;
  DynamicOrpKwIndex<2> dynamic(opt, /*buffer_capacity=*/8);
  Rng rng(641);
  for (int i = 0; i < 8; ++i) {  // Fill to exactly one carry: empty buffer.
    dynamic.Insert({{rng.NextDouble(), rng.NextDouble()}},
                   Document{static_cast<KeywordId>(i), 100});
  }
  const size_t before = dynamic.MemoryBytes();
  std::vector<KeywordId> big(10000);
  std::iota(big.begin(), big.end(), 0);
  dynamic.Insert({{0.5, 0.5}}, Document(std::move(big)));
  const size_t doc_bytes = 10000 * sizeof(KeywordId);
  const size_t delta = dynamic.MemoryBytes() - before;
  EXPECT_GE(delta, doc_bytes);
  EXPECT_LT(delta, doc_bytes + doc_bytes / 2);  // Double-counting => ~2x.
}

TEST(DynamicOrpKw, ExhaustedBudgetStopsLevelFanOut) {
  // Budgeted termination is global across the decomposition: with >= 2
  // active levels and a budget only one node-visit deep, the first level
  // exhausts it and the fan-out must stop there instead of restarting the
  // budget-free walk on every remaining level.
  FrameworkOptions opt;
  opt.k = 2;
  DynamicOrpKwIndex<2> dynamic(opt, /*buffer_capacity=*/4);
  Rng rng(643);
  for (int i = 0; i < 20; ++i) {  // 5 carries = binary 101: two levels.
    dynamic.Insert({{rng.NextDouble(), rng.NextDouble()}},
                   Document{static_cast<KeywordId>(i % 5),
                            static_cast<KeywordId>(5 + i % 3)});
  }
  ASSERT_GE(dynamic.ActiveLevels(), 2u);
  Box<2> everywhere{{{0.0, 0.0}}, {{1.0, 1.0}}};
  std::vector<KeywordId> kws = {0, 5};

  QueryStats unbounded_stats;
  dynamic.Query(everywhere, kws, &unbounded_stats);
  ASSERT_GE(unbounded_stats.nodes_visited, 2u);  // One root per level.

  QueryStats stats;
  OpsBudget budget(1);
  dynamic.Query(everywhere, kws, &stats, &budget);
  EXPECT_TRUE(stats.budget_exhausted);
  EXPECT_TRUE(budget.Exhausted());
  EXPECT_EQ(stats.nodes_visited, 1u);  // Second level's root never visited.
}

TEST(DynamicOrpKwDeath, EmptyDocumentRejected) {
  FrameworkOptions opt;
  opt.k = 2;
  DynamicOrpKwIndex<2> dynamic(opt);
  EXPECT_DEATH(dynamic.Insert({{0, 0}}, Document{}), "non-empty");
}

}  // namespace
}  // namespace kwsc
