// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Tests for SRP-KW (Corollary 6): spherical range reporting with keywords
// via the lifting map.

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/srp_kw.h"
#include "test_util.h"
#include "workload/generator.h"

namespace kwsc {
namespace {

using testing::BruteBall;
using testing::Sorted;

struct SrpParam {
  uint32_t n;
  int k;
  double selectivity;
  PointDistribution dist;
};

class SrpKwTest : public ::testing::TestWithParam<SrpParam> {};

TEST_P(SrpKwTest, MatchesBruteForce) {
  const auto p = GetParam();
  Rng rng(60000 + p.n + p.k);
  CorpusSpec spec;
  spec.num_objects = p.n;
  spec.vocab_size = std::max<uint32_t>(20, p.n / 15);
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<2>(p.n, p.dist, &rng);
  FrameworkOptions opt;
  opt.k = p.k;
  SrpKwIndex<2> index(pts, &corpus, opt);
  for (int trial = 0; trial < 10; ++trial) {
    auto [center, radius_sq] = GenerateBallQuery(
        std::span<const Point<2>>(pts), p.selectivity, &rng);
    auto kws = PickQueryKeywords(
        corpus, p.k,
        trial % 2 == 0 ? KeywordPick::kFrequent : KeywordPick::kCooccurring,
        &rng);
    auto got = index.Query(center, radius_sq, kws);
    auto expected = BruteBall(std::span<const Point<2>>(pts), corpus, center,
                              radius_sq, kws);
    ASSERT_EQ(Sorted(got), expected) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SrpKwTest,
    ::testing::Values(SrpParam{100, 2, 0.2, PointDistribution::kUniform},
                      SrpParam{500, 2, 0.05, PointDistribution::kClustered},
                      SrpParam{500, 3, 0.3, PointDistribution::kUniform},
                      SrpParam{1200, 2, 0.02, PointDistribution::kDiagonal},
                      SrpParam{1200, 3, 0.1, PointDistribution::kClustered}));

TEST(SrpKw, ThreeDimensionalBalls) {
  Rng rng(61);
  const uint32_t n = 400;
  CorpusSpec spec;
  spec.num_objects = n;
  spec.vocab_size = 30;
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<3>(n, PointDistribution::kUniform, &rng);
  FrameworkOptions opt;
  opt.k = 2;
  SrpKwIndex<3> index(pts, &corpus, opt);
  for (int trial = 0; trial < 6; ++trial) {
    auto [center, radius_sq] =
        GenerateBallQuery(std::span<const Point<3>>(pts), 0.2, &rng);
    auto kws = PickQueryKeywords(corpus, 2, KeywordPick::kCooccurring, &rng);
    EXPECT_EQ(Sorted(index.Query(center, radius_sq, kws)),
              BruteBall(std::span<const Point<3>>(pts), corpus, center,
                        radius_sq, kws));
  }
}

TEST(SrpKw, ZeroRadiusHitsExactPoint) {
  Corpus corpus({Document{0, 1}, Document{0, 1}});
  std::vector<Point<2>> pts = {{{2, 3}}, {{5, 5}}};
  FrameworkOptions opt;
  opt.k = 2;
  SrpKwIndex<2> index(pts, &corpus, opt);
  std::vector<KeywordId> kws = {0, 1};
  EXPECT_EQ(index.Query({{2, 3}}, 0.0, kws), (std::vector<ObjectId>{0}));
  EXPECT_TRUE(index.Query({{2.5, 3}}, 0.0, kws).empty());
}

TEST(SrpKw, BoundaryPointsIncluded) {
  // Integer-valued doubles keep the lifted arithmetic exact: a point at
  // distance exactly r belongs to the closed ball.
  Corpus corpus({Document{0, 1}});
  std::vector<Point<2>> pts = {{{3, 4}}};  // Distance 5 from origin.
  FrameworkOptions opt;
  opt.k = 2;
  SrpKwIndex<2> index(pts, &corpus, opt);
  std::vector<KeywordId> kws = {0, 1};
  EXPECT_EQ(index.Query({{0, 0}}, 25.0, kws).size(), 1u);
  EXPECT_TRUE(index.Query({{0, 0}}, 24.999, kws).empty());
}

TEST(SrpKw, ContainsAtLeastAgreesWithTruth) {
  Rng rng(67);
  const uint32_t n = 600;
  CorpusSpec spec;
  spec.num_objects = n;
  spec.vocab_size = 25;
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<2>(n, PointDistribution::kUniform, &rng);
  FrameworkOptions opt;
  opt.k = 2;
  SrpKwIndex<2> index(pts, &corpus, opt);
  for (int trial = 0; trial < 10; ++trial) {
    auto [center, radius_sq] = GenerateBallQuery(
        std::span<const Point<2>>(pts), rng.UniformDouble(0.05, 0.5), &rng);
    auto kws = PickQueryKeywords(corpus, 2, KeywordPick::kFrequent, &rng);
    const size_t truth = BruteBall(std::span<const Point<2>>(pts), corpus,
                                   center, radius_sq, kws)
                             .size();
    for (uint64_t t : {1, 5, 20}) {
      EXPECT_EQ(index.ContainsAtLeast(center, radius_sq, kws, t), truth >= t);
    }
  }
}

}  // namespace
}  // namespace kwsc
