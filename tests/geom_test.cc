// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Unit tests for src/geom: boxes, halfspaces, polygons, the lifting map, and
// the rank-space reduction.

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "geom/box.h"
#include "geom/halfspace.h"
#include "geom/lifting.h"
#include "geom/point.h"
#include "geom/polygon2d.h"
#include "geom/rank_space.h"

namespace kwsc {
namespace {

TEST(Point, Distances) {
  Point<2> p{{0, 0}};
  Point<2> q{{3, 4}};
  EXPECT_DOUBLE_EQ(LInfDistance(p, q), 4.0);
  EXPECT_DOUBLE_EQ(L2DistanceSquared(p, q), 25.0);
}

TEST(Point, IntDistancesExact) {
  IntPoint<3> p{{1, 2, 3}};
  IntPoint<3> q{{4, 6, 3}};
  EXPECT_EQ(LInfDistance(p, q), 4);
  EXPECT_EQ(L2DistanceSquared(p, q), 9 + 16);
}

TEST(Box, ContainsIsClosed) {
  Box<2> b{{{0, 0}}, {{1, 1}}};
  EXPECT_TRUE(b.Contains({{0, 0}}));
  EXPECT_TRUE(b.Contains({{1, 1}}));
  EXPECT_TRUE(b.Contains({{0.5, 0.5}}));
  EXPECT_FALSE(b.Contains({{1.0001, 0.5}}));
}

TEST(Box, IntersectsSharedBoundaryCounts) {
  Box<2> a{{{0, 0}}, {{1, 1}}};
  Box<2> b{{{1, 1}}, {{2, 2}}};
  Box<2> c{{{1.5, 1.5}}, {{2, 2}}};
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(c));
}

TEST(Box, InsideOf) {
  Box<2> outer{{{0, 0}}, {{10, 10}}};
  Box<2> inner{{{2, 2}}, {{3, 3}}};
  EXPECT_TRUE(inner.InsideOf(outer));
  EXPECT_FALSE(outer.InsideOf(inner));
  EXPECT_TRUE(outer.InsideOf(outer));
}

TEST(Box, EverythingContainsAnything) {
  auto b = Box<3>::Everything();
  EXPECT_TRUE(b.Contains({{1e300, -1e300, 0}}));
  EXPECT_TRUE(b.Valid());
}

TEST(Box, ValidDetectsInversion) {
  Box<2, int64_t> b{{{5, 0}}, {{4, 10}}};
  EXPECT_FALSE(b.Valid());
}

TEST(Halfspace, EvalAndSatisfies) {
  // x + 2y <= 4.
  Halfspace<2> h{{{1, 2}}, 4};
  EXPECT_TRUE(h.Satisfies({{0, 0}}));
  EXPECT_TRUE(h.Satisfies({{4, 0}}));   // Boundary is inside (<=).
  EXPECT_FALSE(h.Satisfies({{4, 1}}));
}

TEST(Halfspace, ConvexQueryConjunction) {
  ConvexQuery<2> q;
  q.constraints.push_back({{{1, 0}}, 1});    //  x <= 1
  q.constraints.push_back({{{-1, 0}}, 0});   // -x <= 0
  EXPECT_TRUE(q.Satisfies({{0.5, 99}}));
  EXPECT_FALSE(q.Satisfies({{1.5, 0}}));
  EXPECT_FALSE(q.Satisfies({{-0.5, 0}}));
}

TEST(BoxHalfspace, IntersectAndInsideTestsAgainstSampling) {
  // Property test: the corner tests agree with dense sampling of the box.
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    Box<2> b;
    for (int dim = 0; dim < 2; ++dim) {
      double a = rng.UniformDouble(-5, 5);
      double c = rng.UniformDouble(-5, 5);
      b.lo[dim] = std::min(a, c);
      b.hi[dim] = std::max(a, c);
    }
    Halfspace<2> h{{{rng.UniformDouble(-2, 2), rng.UniformDouble(-2, 2)}},
                   rng.UniformDouble(-4, 4)};
    bool any = false;
    bool all = true;
    for (int i = 0; i <= 8; ++i) {
      for (int j = 0; j <= 8; ++j) {
        Point<2> p{{b.lo[0] + (b.hi[0] - b.lo[0]) * i / 8.0,
                    b.lo[1] + (b.hi[1] - b.lo[1]) * j / 8.0}};
        const bool in = h.Satisfies(p);
        any |= in;
        all &= in;
      }
    }
    // Sampling can only under-approximate `any`; it exactly witnesses `all`
    // corners because the grid includes them.
    if (any) {
      EXPECT_TRUE(b.IntersectsHalfspace(h));
    }
    EXPECT_EQ(b.InsideHalfspace(h), all);
  }
}

TEST(Polygon, FromBoxAreaAndContains) {
  auto poly = ConvexPolygon2D::FromBox({{{0, 0}}, {{2, 3}}});
  EXPECT_DOUBLE_EQ(poly.Area(), 6.0);
  EXPECT_TRUE(poly.Contains({{1, 1}}));
  EXPECT_TRUE(poly.Contains({{0, 0}}));
  EXPECT_FALSE(poly.Contains({{2.5, 1}}));
}

TEST(Polygon, ClipByHalfplane) {
  auto poly = ConvexPolygon2D::FromBox({{{0, 0}}, {{2, 2}}});
  auto clipped = poly.ClipBy({{{1, 0}}, 1});  // Keep x <= 1.
  EXPECT_NEAR(clipped.Area(), 2.0, 1e-9);
  EXPECT_TRUE(clipped.Contains({{0.5, 1}}));
  EXPECT_FALSE(clipped.Contains({{1.5, 1}}));
}

TEST(Polygon, ClipAwayEverything) {
  auto poly = ConvexPolygon2D::FromBox({{{0, 0}}, {{1, 1}}});
  auto clipped = poly.ClipBy({{{1, 0}}, -5});  // x <= -5: empty.
  EXPECT_TRUE(clipped.Empty());
}

TEST(Polygon, IntersectsHalfplaneVertexRule) {
  auto poly = ConvexPolygon2D::FromBox({{{0, 0}}, {{1, 1}}});
  EXPECT_TRUE(poly.IntersectsHalfplane({{{1, 0}}, 0.5}));
  EXPECT_TRUE(poly.IntersectsHalfplane({{{1, 0}}, 0.0}));   // Touches edge.
  EXPECT_FALSE(poly.IntersectsHalfplane({{{1, 0}}, -0.5}));
  EXPECT_TRUE(poly.InsideHalfplane({{{1, 0}}, 1.0}));
  EXPECT_FALSE(poly.InsideHalfplane({{{1, 0}}, 0.5}));
}

TEST(Polygon, IntersectsBox) {
  auto poly = ConvexPolygon2D::FromBox({{{0, 0}}, {{1, 1}}});
  EXPECT_TRUE(poly.IntersectsBox({{{0.5, 0.5}}, {{2, 2}}}));
  EXPECT_FALSE(poly.IntersectsBox({{{1.5, 1.5}}, {{2, 2}}}));
  EXPECT_TRUE(poly.InsideBox({{{-1, -1}}, {{2, 2}}}));
  EXPECT_FALSE(poly.InsideBox({{{0.5, -1}}, {{2, 2}}}));
}

TEST(Lifting, BallMembershipEquivalence) {
  // Property: p in B(c, r)  <=>  lifted p satisfies the lifted halfspace.
  Rng rng(7);
  for (int trial = 0; trial < 500; ++trial) {
    Point<2> p{{rng.UniformDouble(-10, 10), rng.UniformDouble(-10, 10)}};
    Point<2> c{{rng.UniformDouble(-10, 10), rng.UniformDouble(-10, 10)}};
    double r = rng.UniformDouble(0, 8);
    const bool in_ball = L2DistanceSquared(p, c) <= r * r;
    const auto lifted = LiftPoint(p);
    const auto h = BallToLiftedHalfspace(c, r * r);
    EXPECT_EQ(h.Satisfies(lifted), in_ball);
  }
}

TEST(Lifting, LiftPointAppendsSquaredNorm) {
  auto lifted = LiftPoint(Point<2>{{3, 4}});
  EXPECT_DOUBLE_EQ(lifted[0], 3);
  EXPECT_DOUBLE_EQ(lifted[1], 4);
  EXPECT_DOUBLE_EQ(lifted[2], 25);
}

TEST(RankSpace, DistinctRanksUnderTies) {
  // Three objects share x = 1; ranks must be distinct, ordered by id.
  std::vector<Point<2>> pts = {{{1, 5}}, {{1, 3}}, {{1, 4}}, {{0, 9}}};
  RankSpace<2> rs{std::span<const Point<2>>(pts)};
  EXPECT_EQ(rs.ToRank(3)[0], 0);  // x = 0 is smallest.
  EXPECT_EQ(rs.ToRank(0)[0], 1);  // Ties broken by id: 0 < 1 < 2.
  EXPECT_EQ(rs.ToRank(1)[0], 2);
  EXPECT_EQ(rs.ToRank(2)[0], 3);
}

TEST(RankSpace, BoxConversionPreservesResults) {
  // Property (Section 3.4): a rank-space box selects exactly the objects the
  // original box does.
  Rng rng(55);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<Point<2>> pts(60);
    for (auto& p : pts) {
      // Coarse grid to force many ties.
      p = {{std::floor(rng.UniformDouble(0, 6)),
            std::floor(rng.UniformDouble(0, 6))}};
    }
    RankSpace<2> rs{std::span<const Point<2>>(pts)};
    Box<2> q;
    for (int dim = 0; dim < 2; ++dim) {
      double a = rng.UniformDouble(-1, 7);
      double b = rng.UniformDouble(-1, 7);
      q.lo[dim] = std::min(a, b);
      q.hi[dim] = std::max(a, b);
    }
    const auto rq = rs.ToRankBox(q);
    for (uint32_t e = 0; e < pts.size(); ++e) {
      EXPECT_EQ(rq.Contains(rs.ToRank(e)), q.Contains(pts[e]))
          << "object " << e << " trial " << trial;
    }
  }
}

TEST(RankSpace, EmptyRangeYieldsInvertedBox) {
  std::vector<Point<1>> pts = {{{1}}, {{5}}};
  RankSpace<1> rs{std::span<const Point<1>>(pts)};
  auto rq = rs.ToRankBox({{{2}}, {{4}}});  // No coordinate inside.
  EXPECT_FALSE(rq.Valid());
}

}  // namespace
}  // namespace kwsc
