// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Tests for the Theorem-2 dimension-reduction index: correctness against
// brute force in 3 and 4 dimensions, plus the structural claims of Section 4
// (Propositions 1-3 and the at-most-two-type-2-nodes-per-level property of
// Figure 2).

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "core/dim_reduction.h"
#include "test_util.h"
#include "workload/generator.h"

namespace kwsc {
namespace {

using testing::BruteBox;
using testing::Sorted;

struct DimRedParam {
  uint32_t n;
  int k;
  PointDistribution dist;
  double selectivity;
};

class DimRed3DTest : public ::testing::TestWithParam<DimRedParam> {};

TEST_P(DimRed3DTest, MatchesBruteForce) {
  const auto p = GetParam();
  Rng rng(40000 + p.n + p.k);
  CorpusSpec spec;
  spec.num_objects = p.n;
  spec.vocab_size = std::max<uint32_t>(20, p.n / 15);
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<3>(p.n, p.dist, &rng);
  FrameworkOptions opt;
  opt.k = p.k;
  DimRedOrpKwIndex<3> index(pts, &corpus, opt);
  testing::ExpectAuditClean(index);
  for (int trial = 0; trial < 10; ++trial) {
    auto q = GenerateBoxQuery(std::span<const Point<3>>(pts), p.selectivity,
                              &rng);
    auto kws = PickQueryKeywords(
        corpus, p.k,
        trial % 2 == 0 ? KeywordPick::kFrequent : KeywordPick::kCooccurring,
        &rng);
    QueryStats stats;
    auto got = index.Query(q, kws, &stats);
    auto expected = BruteBox(std::span<const Point<3>>(pts), corpus, q, kws);
    ASSERT_EQ(Sorted(got), expected) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DimRed3DTest,
    ::testing::Values(DimRedParam{100, 2, PointDistribution::kUniform, 0.3},
                      DimRedParam{400, 2, PointDistribution::kClustered, 0.1},
                      DimRedParam{400, 3, PointDistribution::kUniform, 0.5},
                      DimRedParam{1200, 2, PointDistribution::kUniform, 0.05},
                      DimRedParam{1200, 3, PointDistribution::kDiagonal,
                                  0.2}));

TEST(DimRed, FourDimensionsMatchBruteForce) {
  Rng rng(41);
  const uint32_t n = 500;
  CorpusSpec spec;
  spec.num_objects = n;
  spec.vocab_size = 40;
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<4>(n, PointDistribution::kUniform, &rng);
  FrameworkOptions opt;
  opt.k = 2;
  DimRedOrpKwIndex<4> index(pts, &corpus, opt);
  testing::ExpectAuditClean(index);
  for (int trial = 0; trial < 8; ++trial) {
    auto q = GenerateBoxQuery(std::span<const Point<4>>(pts), 0.3, &rng);
    auto kws = PickQueryKeywords(corpus, 2, KeywordPick::kCooccurring, &rng);
    EXPECT_EQ(Sorted(index.Query(q, kws)),
              BruteBox(std::span<const Point<4>>(pts), corpus, q, kws));
  }
}

TEST(DimRed, TiesOnXAxisAreHandled) {
  // Several objects share x-coordinates; the (x, id) sort must keep results
  // exact across group boundaries.
  Rng rng(43);
  const uint32_t n = 300;
  std::vector<Document> docs;
  std::vector<Point<3>> pts;
  for (uint32_t i = 0; i < n; ++i) {
    docs.push_back(Document{static_cast<KeywordId>(i % 6),
                            static_cast<KeywordId>(6 + i % 5)});
    pts.push_back({{std::floor(rng.UniformDouble(0, 4)),
                    rng.NextDouble(), rng.NextDouble()}});
  }
  Corpus corpus(std::move(docs));
  FrameworkOptions opt;
  opt.k = 2;
  DimRedOrpKwIndex<3> index(pts, &corpus, opt);
  for (int trial = 0; trial < 20; ++trial) {
    Box<3> q;
    q.lo = {{std::floor(rng.UniformDouble(0, 4)), rng.NextDouble() * 0.5,
             rng.NextDouble() * 0.5}};
    q.hi = {{q.lo[0] + std::floor(rng.UniformDouble(0, 3)),
             q.lo[1] + 0.5, q.lo[2] + 0.5}};
    std::vector<KeywordId> kws = {static_cast<KeywordId>(trial % 6),
                                  static_cast<KeywordId>(6 + trial % 5)};
    EXPECT_EQ(Sorted(index.Query(q, kws)),
              BruteBox(std::span<const Point<3>>(pts), corpus, q, kws));
  }
}

TEST(DimRed, ShapeHasDoubleLogLevels) {
  // Proposition 1: O(log log N) levels. For N ~ 2^15 the bound
  // log_k(log_2 N) + c is tiny; assert a generous cap of 8.
  Rng rng(47);
  const uint32_t n = 4000;
  CorpusSpec spec;
  spec.num_objects = n;
  spec.vocab_size = 200;
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<3>(n, PointDistribution::kUniform, &rng);
  FrameworkOptions opt;
  opt.k = 2;
  DimRedOrpKwIndex<3> index(pts, &corpus, opt);
  const auto shape = index.Shape();
  EXPECT_LE(shape.levels, 8);
  EXPECT_GE(shape.levels, 2);
  // Fanout schedule: max fanout grows with depth until saturation
  // (Eq. (10)); level 0 is exactly 4 for k = 2.
  ASSERT_FALSE(shape.max_fanout_per_level.empty());
  EXPECT_EQ(shape.max_fanout_per_level[0], 4u);
}

TEST(DimRed, AtMostTwoType2NodesPerLevel) {
  // The Figure-2 property: each level contributes at most two type-2 nodes.
  Rng rng(53);
  const uint32_t n = 3000;
  CorpusSpec spec;
  spec.num_objects = n;
  spec.vocab_size = 150;
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<3>(n, PointDistribution::kUniform, &rng);
  FrameworkOptions opt;
  opt.k = 2;
  DimRedOrpKwIndex<3> index(pts, &corpus, opt);
  for (int trial = 0; trial < 25; ++trial) {
    auto q = GenerateBoxQuery(std::span<const Point<3>>(pts),
                              rng.UniformDouble(0.01, 0.9), &rng);
    auto kws = PickQueryKeywords(corpus, 2, KeywordPick::kFrequent, &rng);
    QueryStats stats;
    index.Query(q, kws, &stats);
    for (size_t level = 0; level < stats.type2_per_level.size(); ++level) {
      EXPECT_LE(stats.type2_per_level[level], 2u)
          << "level " << level << " trial " << trial;
    }
  }
}

TEST(DimRed, FanoutBoundedByProposition3) {
  // Proposition 3: f_u = O(N^{1-1/k}).
  Rng rng(59);
  const uint32_t n = 4000;
  CorpusSpec spec;
  spec.num_objects = n;
  spec.vocab_size = 150;
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<3>(n, PointDistribution::kUniform, &rng);
  FrameworkOptions opt;
  opt.k = 2;
  DimRedOrpKwIndex<3> index(pts, &corpus, opt);
  const auto shape = index.Shape();
  const double bound =
      8.0 * std::pow(static_cast<double>(corpus.total_weight()), 0.5);
  for (uint64_t f : shape.max_fanout_per_level) {
    EXPECT_LE(static_cast<double>(f), bound);
  }
}

TEST(DimRed, ContainsAtLeastAgreesWithTruth) {
  Rng rng(61);
  const uint32_t n = 800;
  CorpusSpec spec;
  spec.num_objects = n;
  spec.vocab_size = 30;
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<3>(n, PointDistribution::kUniform, &rng);
  FrameworkOptions opt;
  opt.k = 2;
  DimRedOrpKwIndex<3> index(pts, &corpus, opt);
  for (int trial = 0; trial < 10; ++trial) {
    auto q = GenerateBoxQuery(std::span<const Point<3>>(pts), 0.4, &rng);
    auto kws = PickQueryKeywords(corpus, 2, KeywordPick::kFrequent, &rng);
    const size_t truth =
        BruteBox(std::span<const Point<3>>(pts), corpus, q, kws).size();
    for (uint64_t t : {1, 3, 10}) {
      EXPECT_EQ(index.ContainsAtLeast(q, kws, t), truth >= t);
    }
  }
}

TEST(DimRed, MemoryGrowsWithSecondaryStructures) {
  Rng rng(67);
  CorpusSpec spec;
  spec.num_objects = 500;
  spec.vocab_size = 50;
  Corpus corpus = GenerateCorpus(spec, &rng);
  auto pts = GeneratePoints<3>(500, PointDistribution::kUniform, &rng);
  FrameworkOptions opt;
  opt.k = 2;
  DimRedOrpKwIndex<3> index(pts, &corpus, opt);
  // The root alone duplicates the corpus into a secondary structure, so the
  // index must be bigger than the corpus.
  EXPECT_GT(index.MemoryBytes(), corpus.MemoryBytes());
}

}  // namespace
}  // namespace kwsc
