// Copyright 2026 The kwsc Authors. Licensed under the Apache License 2.0.
//
// Tests for kwsc-lint (tools/kwsc_lint): every seeded violation in
// tests/lint_fixtures/ must fire as its specific rule-id, the control
// fixture and the real tree must be clean, and the suppression layers
// (inline allow-comments, allowlist entries) must work.

#include "lint.h"

#include <map>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace kwsc {
namespace lint {
namespace {

#ifndef KWSC_SOURCE_DIR
#error "lint_test requires the KWSC_SOURCE_DIR compile definition"
#endif

std::string Root() { return KWSC_SOURCE_DIR; }

std::vector<Finding> LintFixture(const std::string& relative_path) {
  Linter linter({});
  linter.SetRoot(Root());
  EXPECT_TRUE(linter.LintFile(Root() + "/" + relative_path))
      << "unreadable fixture: " << relative_path;
  return linter.TakeFindings();
}

std::map<std::string, int> CountByRule(const std::vector<Finding>& findings) {
  std::map<std::string, int> counts;
  for (const Finding& f : findings) ++counts[f.rule];
  return counts;
}

std::string Render(const std::vector<Finding>& findings) {
  std::string out;
  for (const Finding& f : findings) out += f.Format() + "\n";
  return out;
}

TEST(LintFixtures, BadClockFiresDeterminismClock) {
  const auto findings = LintFixture("tests/lint_fixtures/bad_clock.cc");
  const auto counts = CountByRule(findings);
  EXPECT_EQ(counts.at("determinism-clock"), 4) << Render(findings);
  EXPECT_EQ(counts.size(), 1u) << Render(findings);
}

TEST(LintFixtures, BadHashOrderFiresHashOrder) {
  const auto findings = LintFixture("tests/lint_fixtures/bad_hash_order.cc");
  const auto counts = CountByRule(findings);
  EXPECT_EQ(counts.at("hash-order"), 1) << Render(findings);
  EXPECT_EQ(counts.size(), 1u) << Render(findings);
}

TEST(LintFixtures, BadArchiveSkewFiresArchiveSymmetryPerSkewClass) {
  const auto findings = LintFixture("tests/lint_fixtures/bad_archive_skew.cc");
  const auto counts = CountByRule(findings);
  EXPECT_EQ(counts.at("archive-symmetry"), 3) << Render(findings);
  EXPECT_EQ(counts.size(), 1u) << Render(findings);
  // Each skewed owner fires; the symmetric control does not.
  bool dropped = false;
  bool swapped = false;
  bool narrowed = false;
  for (const Finding& f : findings) {
    dropped = dropped || f.message.find("DroppedField") == 0;
    swapped = swapped || f.message.find("SwappedOrder") == 0;
    narrowed = narrowed || f.message.find("NarrowedField") == 0;
    EXPECT_EQ(f.message.find("Symmetric"), std::string::npos) << f.Format();
  }
  EXPECT_TRUE(dropped && swapped && narrowed) << Render(findings);
}

TEST(LintFixtures, BadFlatPairFiresArchiveSymmetryByExactName) {
  const auto findings = LintFixture("tests/lint_fixtures/bad_flat_pair.cc");
  const auto counts = CountByRule(findings);
  EXPECT_EQ(counts.at("archive-symmetry"), 3) << Render(findings);
  EXPECT_EQ(counts.size(), 1u) << Render(findings);
  bool missing_load_flat = false;
  bool missing_save_flat = false;
  bool skewed_v1 = false;
  for (const Finding& f : findings) {
    missing_load_flat =
        missing_load_flat || f.message.find("MissingLoadFlat") == 0;
    missing_save_flat =
        missing_save_flat || f.message.find("MissingSaveFlat") == 0;
    // The regression that motivates exact-name pairing: the skewed v1 pair
    // must still fire even though the owner also defines SaveFlat/LoadFlat.
    skewed_v1 = skewed_v1 || f.message.find("SkewedV1WithFlat") == 0;
    EXPECT_EQ(f.message.find("FlatControl"), std::string::npos) << f.Format();
  }
  EXPECT_TRUE(missing_load_flat && missing_save_flat && skewed_v1)
      << Render(findings);
}

TEST(LintFixtures, BadOpsBudgetFiresOpsBudget) {
  const auto findings =
      LintFixture("tests/lint_fixtures/core/bad_ops_budget.cc");
  const auto counts = CountByRule(findings);
  EXPECT_EQ(counts.at("ops-budget"), 1) << Render(findings);
  EXPECT_EQ(counts.size(), 1u) << Render(findings);
}

TEST(LintFixtures, BadHeaderFiresHygieneRules) {
  const auto findings = LintFixture("tests/lint_fixtures/bad_header.h");
  const auto counts = CountByRule(findings);
  EXPECT_EQ(counts.at("copyright"), 1) << Render(findings);
  EXPECT_EQ(counts.at("include-guard"), 1) << Render(findings);
  EXPECT_EQ(counts.at("using-namespace"), 1) << Render(findings);
  EXPECT_EQ(counts.size(), 3u) << Render(findings);
}

// --- v2 concurrency + flat-slab rule pack. Each fixture seeds exactly its
// rule's violations; the inline controls (sanctioned idioms) must not fire,
// which the counts.size() == 1 assertion pins down.

TEST(LintFixtures, BadThreadCaptureFiresPerSharedWrite) {
  const auto findings =
      LintFixture("tests/lint_fixtures/src/common/bad_thread_capture.cc");
  const auto counts = CountByRule(findings);
  EXPECT_EQ(counts.at("thread-capture"), 3) << Render(findings);
  EXPECT_EQ(counts.size(), 1u) << Render(findings);
  // The elementwise (slots[0] = ...) and MutexLock-guarded tasks are clean:
  // every finding names one of the three unsynchronized captures.
  for (const Finding& f : findings) {
    EXPECT_TRUE(f.message.find("'total'") != std::string::npos ||
                f.message.find("'rows'") != std::string::npos ||
                f.message.find("'sum'") != std::string::npos)
        << f.Format();
  }
}

TEST(LintFixtures, BadStaticStateFiresPerMutableStatic) {
  const auto findings =
      LintFixture("tests/lint_fixtures/src/common/bad_static_state.cc");
  const auto counts = CountByRule(findings);
  EXPECT_EQ(counts.at("concurrency-static-state"), 3) << Render(findings);
  EXPECT_EQ(counts.size(), 1u) << Render(findings);
}

TEST(LintFixtures, BadRawThreadFiresPerEscape) {
  const auto findings =
      LintFixture("tests/lint_fixtures/src/common/bad_raw_thread.cc");
  const auto counts = CountByRule(findings);
  EXPECT_EQ(counts.at("concurrency-raw-thread"), 3) << Render(findings);
  EXPECT_EQ(counts.size(), 1u) << Render(findings);
}

TEST(LintFixtures, BadRawMutexFiresPerBannedType) {
  const auto findings =
      LintFixture("tests/lint_fixtures/src/common/bad_raw_mutex.cc");
  const auto counts = CountByRule(findings);
  EXPECT_EQ(counts.at("concurrency-raw-mutex"), 4) << Render(findings);
  EXPECT_EQ(counts.size(), 1u) << Render(findings);
}

TEST(LintFixtures, BadUnguardedMutexFiresOnlyOnContractlessMutex) {
  const auto findings =
      LintFixture("tests/lint_fixtures/src/common/bad_unguarded_mutex.cc");
  const auto counts = CountByRule(findings);
  EXPECT_EQ(counts.at("concurrency-unguarded-mutex"), 1) << Render(findings);
  EXPECT_EQ(counts.size(), 1u) << Render(findings);
  ASSERT_EQ(findings.size(), 1u);
  // mu2_ carries KWSC_EXCLUDES/KWSC_GUARDED_BY contracts and must be clean.
  EXPECT_NE(findings[0].message.find("'mu_'"), std::string::npos)
      << findings[0].message;
}

TEST(LintFixtures, BadFlatEscapeFiresOnCastAndArithmetic) {
  const auto findings =
      LintFixture("tests/lint_fixtures/src/common/bad_flat_escape.cc");
  const auto counts = CountByRule(findings);
  EXPECT_EQ(counts.at("flat-escape"), 2) << Render(findings);
  EXPECT_EQ(counts.size(), 1u) << Render(findings);
  bool cast = false;
  bool arithmetic = false;
  for (const Finding& f : findings) {
    cast = cast || f.message.find("reinterpret_cast") != std::string::npos;
    arithmetic =
        arithmetic || f.message.find("pointer arithmetic") != std::string::npos;
  }
  EXPECT_TRUE(cast && arithmetic) << Render(findings);
}

TEST(LintFixtures, BadFlatRetainFiresOnRetainedViews) {
  const auto findings =
      LintFixture("tests/lint_fixtures/src/common/bad_flat_retain.cc");
  const auto counts = CountByRule(findings);
  EXPECT_EQ(counts.at("flat-retain"), 2) << Render(findings);
  EXPECT_EQ(counts.size(), 1u) << Render(findings);
  // Owning the MmapFile (mmap_) is sanctioned: only the reader and raw
  // pointer members fire.
  for (const Finding& f : findings) {
    EXPECT_TRUE(f.message.find("'reader_'") != std::string::npos ||
                f.message.find("'base_'") != std::string::npos)
        << f.Format();
  }
}

// --- v3 ABI/format rule pack. Same contract: each fixture seeds exactly its
// rule's violations and the inline controls stay clean.

TEST(LintFixtures, BadAbiUnregisteredFiresOnUnlockedSlabElement) {
  const auto findings =
      LintFixture("tests/lint_fixtures/src/core/bad_abi_unregistered.cc");
  const auto counts = CountByRule(findings);
  EXPECT_EQ(counts.at("abi-unregistered-struct"), 1) << Render(findings);
  EXPECT_EQ(counts.size(), 1u) << Render(findings);
  // The registered record on the same slab path is the control.
  for (const Finding& f : findings) {
    EXPECT_NE(f.message.find("'UnlockedRec'"), std::string::npos)
        << f.Format();
  }
}

TEST(LintFixtures, BadAbiRawWidthFiresPerPlatformWidthField) {
  const auto findings =
      LintFixture("tests/lint_fixtures/src/core/bad_abi_raw_width.cc");
  const auto counts = CountByRule(findings);
  EXPECT_EQ(counts.at("abi-raw-width"), 3) << Render(findings);
  EXPECT_EQ(counts.size(), 1u) << Render(findings);
  // Field-declaration granularity: the `int` method parameter and the
  // `static constexpr int` member of the control struct must not fire.
  for (const Finding& f : findings) {
    EXPECT_NE(f.message.find("'SloppyHeader'"), std::string::npos)
        << f.Format();
  }
}

TEST(LintFixtures, BadAbiVersionBumpFiresOnLiteralMagicVersion) {
  const auto findings =
      LintFixture("tests/lint_fixtures/src/core/bad_abi_version_bump.cc");
  const auto counts = CountByRule(findings);
  EXPECT_EQ(counts.at("abi-version-bump"), 1) << Render(findings);
  EXPECT_EQ(counts.size(), 1u) << Render(findings);
  for (const Finding& f : findings) {
    EXPECT_NE(f.message.find("\"KWBD\""), std::string::npos) << f.Format();
  }
}

// --- epoch/snapshot discipline rule. Both halves must fire — non-API
// access on the EpochPtr itself and in-place mutation of an acquired
// snapshot — while the API-conformant publisher/reader controls (including
// the build-then-Publish mutation of a fresh same-named local) stay clean.

TEST(LintFixtures, BadEpochAccessFiresOutsideTheApi) {
  const auto findings =
      LintFixture("tests/lint_fixtures/src/common/bad_epoch_access.cc");
  const auto counts = CountByRule(findings);
  EXPECT_EQ(counts.at("epoch-nonapi-access"), 3) << Render(findings);
  EXPECT_EQ(counts.size(), 1u) << Render(findings);
  bool poke = false;
  bool off_api = false;
  bool snapshot_mutation = false;
  for (const Finding& f : findings) {
    poke = poke || f.message.find("'levels_.current_'") != std::string::npos;
    off_api =
        off_api || f.message.find("'levels_.Reset'") != std::string::npos;
    snapshot_mutation = snapshot_mutation ||
                        (f.message.find("snapshot 'snap'") !=
                             std::string::npos &&
                         f.message.find("push_back") != std::string::npos);
  }
  EXPECT_TRUE(poke && off_api && snapshot_mutation) << Render(findings);
}

TEST(LintFixtures, GoodCleanIsClean) {
  const auto findings = LintFixture("tests/lint_fixtures/good_clean.cc");
  EXPECT_TRUE(findings.empty()) << Render(findings);
}

// The gate the CI lint job enforces: the real tree, under the checked-in
// allowlist, has zero findings. If this fails, either fix the flagged code
// or (for an audited exception) extend tools/lint_allowlist.txt.
TEST(LintRealTree, SrcBenchTestsExamplesAreClean) {
  Linter linter(LoadAllowlistFile(Root() + "/tools/lint_allowlist.txt"));
  linter.SetRoot(Root());
  EXPECT_TRUE(linter.LintTree(Root() + "/src"));
  EXPECT_TRUE(linter.LintTree(Root() + "/bench"));
  EXPECT_TRUE(linter.LintTree(Root() + "/tests"));
  EXPECT_TRUE(linter.LintTree(Root() + "/examples"));
  const auto findings = linter.TakeFindings();
  EXPECT_TRUE(findings.empty()) << Render(findings);
}

TEST(LintRealTree, FixtureDirectoryIsSkippedByTreeScan) {
  Linter linter({});
  linter.SetRoot(Root());
  EXPECT_TRUE(linter.LintTree(Root() + "/tests/lint_fixtures"));
  // Recursion into a directory named lint_fixtures is disabled at the top,
  // but note LintTree is handed the directory itself here; the guard is on
  // child directories, so scan tests/ instead to prove the skip.
  Linter tests_scan(LoadAllowlistFile(Root() + "/tools/lint_allowlist.txt"));
  tests_scan.SetRoot(Root());
  EXPECT_TRUE(tests_scan.LintTree(Root() + "/tests"));
  for (const Finding& f : tests_scan.TakeFindings()) {
    EXPECT_EQ(f.file.find("lint_fixtures"), std::string::npos) << f.Format();
  }
}

TEST(LintSuppression, ParseAllowlist) {
  const auto entries = ParseAllowlist(
      "# comment\n"
      "\n"
      "ops-budget  core/special.cc\n"
      "determinism-clock  bench/  std::time(nullptr)  \n");
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].rule, "ops-budget");
  EXPECT_EQ(entries[0].path_substring, "core/special.cc");
  EXPECT_TRUE(entries[0].line_substring.empty());
  EXPECT_EQ(entries[1].rule, "determinism-clock");
  EXPECT_EQ(entries[1].path_substring, "bench/");
  EXPECT_EQ(entries[1].line_substring, "std::time(nullptr)");
}

TEST(LintSuppression, AllowlistEntrySuppresses) {
  Linter linter(ParseAllowlist("determinism-clock some/file.cc\n"));
  linter.LintSource("some/file.cc",
                    "// Copyright 2026 The kwsc Authors.\n"
                    "void F() { (void)std::rand(); }\n");
  EXPECT_TRUE(linter.TakeFindings().empty());
  // The same source under a non-matching path still fires.
  Linter other(ParseAllowlist("determinism-clock some/file.cc\n"));
  other.LintSource("other/file.cc",
                   "// Copyright 2026 The kwsc Authors.\n"
                   "void F() { (void)std::rand(); }\n");
  EXPECT_EQ(other.TakeFindings().size(), 1u);
}

TEST(LintSuppression, InlineAllowOnSameLineSuppresses) {
  Linter linter({});
  linter.LintSource(
      "x.cc",
      "// Copyright 2026 The kwsc Authors.\n"
      "void F() { (void)std::rand(); }  // kwsc-lint: allow(determinism-clock)\n");
  EXPECT_TRUE(linter.TakeFindings().empty());
}

TEST(LintRules, MemberNamedTimeIsNotFlagged) {
  Linter linter({});
  linter.LintSource("x.cc",
                    "// Copyright 2026 The kwsc Authors.\n"
                    "long F(const Widget& w) { return w.time(); }\n");
  EXPECT_TRUE(linter.TakeFindings().empty());
}

TEST(LintRules, GuardNameIsDerivedFromPath) {
  Linter linter({});
  linter.LintSource("src/core/foo_bar.h",
                    "// Copyright 2026 The kwsc Authors.\n"
                    "#ifndef KWSC_CORE_FOO_BAR_H_\n"
                    "#define KWSC_CORE_FOO_BAR_H_\n"
                    "#endif  // KWSC_CORE_FOO_BAR_H_\n");
  EXPECT_TRUE(linter.TakeFindings().empty());
  Linter outside_src(LoadAllowlistFile("/nonexistent/allowlist"));
  outside_src.LintSource("tests/test_util.h",
                         "// Copyright 2026 The kwsc Authors.\n"
                         "#ifndef KWSC_CORE_FOO_BAR_H_\n"
                         "#define KWSC_CORE_FOO_BAR_H_\n"
                         "#endif\n");
  const auto findings = outside_src.TakeFindings();
  ASSERT_EQ(findings.size(), 1u) << Render(findings);
  EXPECT_EQ(findings[0].rule, "include-guard");
  EXPECT_NE(findings[0].message.find("KWSC_TESTS_TEST_UTIL_H_"),
            std::string::npos)
      << findings[0].message;
}

}  // namespace
}  // namespace lint
}  // namespace kwsc
